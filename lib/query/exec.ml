open Algebra

(* Telemetry: per-operator produced-row counters (lazy operators count
   rows as they stream), spans around the blocking materialisations and
   the top-level entry points.  All hooks vanish to a flag read while
   telemetry is off. *)
let m_rows_scan = Telemetry.Metrics.counter "query.rows.scan"
let m_rows_bgp = Telemetry.Metrics.counter "query.rows.bgp"
let m_rows_join = Telemetry.Metrics.counter "query.rows.join"
let m_rows_left_join = Telemetry.Metrics.counter "query.rows.left_join"
let m_rows_union = Telemetry.Metrics.counter "query.rows.union"
let m_rows_values = Telemetry.Metrics.counter "query.rows.values"
let m_rows_filter = Telemetry.Metrics.counter "query.rows.filter"
let m_rows_distinct = Telemetry.Metrics.counter "query.rows.distinct"
let m_rows_project = Telemetry.Metrics.counter "query.rows.project"
let m_rows_group = Telemetry.Metrics.counter "query.rows.group"
let m_rows_order = Telemetry.Metrics.counter "query.rows.order_by"
let m_rows_slice = Telemetry.Metrics.counter "query.rows.slice"

(* Join-strategy counters: one bump per BGP step executed under each
   strategy (at pipeline construction, so EXPLAIN-only planning does not
   count). *)
let m_join_merge = Telemetry.Metrics.counter "query.join.merge"
let m_join_hash = Telemetry.Metrics.counter "query.join.hash"
let m_join_nested = Telemetry.Metrics.counter "query.join.nested"

let counted c seq =
  if !Telemetry.Config.enabled then
    Seq.map
      (fun x ->
        Telemetry.Metrics.incr c;
        x)
      seq
  else seq

(* --- value comparison ------------------------------------------------- *)

let numeric_of_term = function
  | Rdf.Term.Literal { value; datatype = Some dt; _ }
    when dt = Rdf.Namespace.xsd "integer" || dt = Rdf.Namespace.xsd "decimal"
         || dt = Rdf.Namespace.xsd "double" || dt = Rdf.Namespace.xsd "int"
         || dt = Rdf.Namespace.xsd "long" ->
      float_of_string_opt value
  | _ -> None

let numeric_of_value dict = function
  | Binding.Int n -> Some (float_of_int n)
  | Binding.Id _ as v -> (
      match Binding.term dict v with None -> None | Some t -> numeric_of_term t)

let compare_values dict a b =
  match (numeric_of_value dict a, numeric_of_value dict b) with
  | Some x, Some y -> compare x y
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None ->
      compare (Binding.value_to_string dict a) (Binding.value_to_string dict b)

(* --- filter evaluation ------------------------------------------------ *)

exception Filter_error
(* SPARQL's "error" outcome: the solution is dropped. *)

let value_of_atom dict binding = function
  | Var v -> ( match Binding.get binding v with Some x -> x | None -> raise Filter_error)
  | Term t -> (
      match Dict.Term_dict.find_term dict t with
      | Some id -> Binding.Id id
      | None ->
          (* A constant not in the dictionary can still be compared by
             value; encode it transiently as its numeric/string form. *)
          (match numeric_of_term t with
          | Some f when Float.is_integer f -> Binding.Int (int_of_float f)
          | _ -> raise Filter_error))

let rec eval_value dict binding = function
  | E_atom a -> value_of_atom dict binding a
  | _ -> raise Filter_error

and eval_bool dict binding expr =
  match expr with
  | E_atom _ -> raise Filter_error
  | E_bound v -> Binding.mem binding v
  | E_not e -> not (eval_bool dict binding e)
  | E_and (a, b) -> eval_bool dict binding a && eval_bool dict binding b
  | E_or (a, b) -> eval_bool dict binding a || eval_bool dict binding b
  | E_eq (a, b) -> cmp dict binding a b = 0
  | E_neq (a, b) -> cmp dict binding a b <> 0
  | E_lt (a, b) -> cmp dict binding a b < 0
  | E_le (a, b) -> cmp dict binding a b <= 0
  | E_gt (a, b) -> cmp dict binding a b > 0
  | E_ge (a, b) -> cmp dict binding a b >= 0

and cmp dict binding a b =
  compare_values dict (eval_value dict binding a) (eval_value dict binding b)

let filter_pass dict binding expr =
  match eval_bool dict binding expr with
  | ok -> ok
  | exception Filter_error -> false

(* --- BGP evaluation --------------------------------------------------- *)

(* Resolve a pattern position under the current solution.  [None] means
   the whole pattern can match nothing (unknown constant). *)
let resolve dict binding = function
  | Term t -> (
      match Dict.Term_dict.find_term dict t with None -> None | Some id -> Some (Some id))
  | Var v -> (
      match Binding.get binding v with
      | Some (Binding.Id id) -> Some (Some id)
      | Some (Binding.Int _) -> None  (* an aggregate value is not a term *)
      | None -> Some None)

let extend_with binding (tp : tp) (tr : Dict.Term_dict.id_triple) =
  (* Bind this pattern's variables to the matched triple, rejecting
     solutions where a repeated variable would take two values. *)
  let step pos_atom value binding =
    match binding with
    | None -> None
    | Some b -> (
        match pos_atom with
        | Term _ -> Some b
        | Var v ->
            if Binding.compatible b v (Binding.Id value) then
              Some (Binding.bind b v (Binding.Id value))
            else None)
  in
  Some binding |> step tp.s tr.s |> step tp.p tr.p |> step tp.o tr.o

let eval_tp store (tp : tp) binding =
  let dict = Hexa.Store_sig.dict store in
  match (resolve dict binding tp.s, resolve dict binding tp.p, resolve dict binding tp.o) with
  | Some s, Some p, Some o ->
      Hexa.Store_sig.lookup store { Hexa.Pattern.s; p; o }
      |> Seq.filter_map (extend_with binding tp)
      |> counted m_rows_scan
  | _ -> Seq.empty

(* --- joins ------------------------------------------------------------ *)

let merge_bindings a b =
  let rec loop acc = function
    | [] -> Some acc
    | (v, x) :: rest ->
        if Binding.compatible acc v x then loop (Binding.bind acc v x) rest else None
  in
  loop a (Binding.to_list b)

(* --- BGP join operators ------------------------------------------------ *)

(* Merge join: the accumulated bindings stream sorted on [var] (the
   planner guarantees it — every step operator preserves the first
   scan's order), and [Store_sig.scan_sorted] serves the pattern's
   matches sorted on [var]'s position with galloping seeks.  The
   equal-key run under the cursor is buffered once per distinct left
   key so that duplicate left keys — the common case after an earlier
   one-to-many step — replay the run without re-seeking the store. *)
let eval_merge store (tp : tp) var pos sols =
  let dict = Hexa.Store_sig.dict store in
  match (resolve dict Binding.empty tp.s, resolve dict Binding.empty tp.p, resolve dict Binding.empty tp.o) with
  | Some s, Some p, Some o -> (
      match Hexa.Store_sig.scan_sorted store { Hexa.Pattern.s; p; o } pos with
      | None ->
          (* The planner only picks merge when the store offered the
             scan; a concurrent store change could in principle retract
             it, so degrade to the nested loop rather than fail. *)
          Seq.concat_map (eval_tp store tp) sols
      | Some (_ord, seek) ->
          let value_at (tr : Dict.Term_dict.id_triple) =
            match pos with
            | Hexa.Pattern.Subj -> tr.s
            | Hexa.Pattern.Pred -> tr.p
            | Hexa.Pattern.Obj -> tr.o
          in
          let collect_run k =
            let rec aux acc seq =
              match seq () with
              | Seq.Cons (tr, tl) when value_at tr = k -> aux (tr :: acc) tl
              | _ -> List.rev acc
            in
            aux [] (seek k)
          in
          let rec go sols last () =
            match sols () with
            | Seq.Nil -> Seq.Nil
            | Seq.Cons (sol, rest) -> (
                match Binding.get sol var with
                | Some (Binding.Id k) ->
                    let run =
                      match last with
                      | Some (k', run) when k' = k -> run
                      | _ -> collect_run k
                    in
                    let matched = List.filter_map (extend_with sol tp) run in
                    Seq.append (List.to_seq matched) (go rest (Some (k, run))) ()
                | Some (Binding.Int _) | None ->
                    (* A non-term value (aggregate) joins no triple. *)
                    go rest last ())
          in
          counted m_rows_scan (go sols None))
  | _ -> Seq.empty

(* Hash join: enumerate the pattern's matches once, independently of the
   accumulated bindings, key them by the shared variables, then probe
   per binding.  The build is deferred into the sequence so EXPLAIN
   without ANALYZE never pays for it. *)
let eval_hash store (tp : tp) shared sols =
  let dict = Hexa.Store_sig.dict store in
  match (resolve dict Binding.empty tp.s, resolve dict Binding.empty tp.p, resolve dict Binding.empty tp.o) with
  | Some s, Some p, Some o ->
      let build () =
        Telemetry.Trace.with_span "exec.bgp.hash_build" @@ fun () ->
        let table = Hashtbl.create 256 in
        Seq.iter
          (fun tr ->
            match extend_with Binding.empty tp tr with
            | Some b -> Hashtbl.add table (List.map (Binding.get b) shared) b
            | None -> ())
          (Hexa.Store_sig.lookup store { Hexa.Pattern.s; p; o });
        table
      in
      let joined () =
        let table = build () in
        Seq.concat_map
          (fun sol ->
            let key = List.map (Binding.get sol) shared in
            (* find_all returns most-recent-first; reverse back to build
               (index) order so results stream deterministically. *)
            List.to_seq (List.rev (Hashtbl.find_all table key))
            |> Seq.filter_map (merge_bindings sol))
          sols ()
      in
      counted m_rows_scan joined
  | _ -> Seq.empty

let eval_choice store sols (c : Planner.choice) =
  match c.Planner.strategy with
  | Planner.Scan -> Seq.concat_map (eval_tp store c.Planner.tp) sols
  | Planner.Nested_loop ->
      Telemetry.Metrics.incr m_join_nested;
      Seq.concat_map (eval_tp store c.Planner.tp) sols
  | Planner.Merge_join { var; pos } ->
      Telemetry.Metrics.incr m_join_merge;
      eval_merge store c.Planner.tp var pos sols
  | Planner.Hash_join { vars } ->
      Telemetry.Metrics.incr m_join_hash;
      eval_hash store c.Planner.tp vars sols

(* Strategy-aware pipeline over an already-planned choice list; EXPLAIN
   ANALYZE reuses this on plan prefixes so its per-operator cardinalities
   come from exactly the executed operators. *)
let eval_plan store choices =
  List.fold_left (eval_choice store) (Seq.return Binding.empty) choices

(* Domain-parallel BGP evaluation.  The driving scan is split into
   contiguous ranges on its sort position ([Store_sig.scan_split]); each
   range seeds the full downstream pipeline — merge/hash probes included
   — as one task on the [Par] pool, over a pinned view of the store so a
   concurrent delta writer cannot mutate what the lanes read.  Ranges
   partition the scan in output order, and every step operator is
   left-order-preserving, so concatenating the per-domain runs in range
   order reproduces the sequential stream exactly (row counters stay
   exact; per-call counters like [query.join.*] and the hash build span
   inflate by the part count — see DESIGN.md §13).  Unlike the
   sequential path the fan-out is eager: all ranges run to completion
   even if the consumer stops early (LIMIT/ASK).

   [None] means "could not fan out" (store refused the split): fall back
   to the sequential pipeline. *)
let eval_bgp_parallel store (first : Planner.choice) rest parts pos =
  let tp = first.Planner.tp in
  let label = Printf.sprintf "bgp(%d)" (1 + List.length rest) in
  let fanout achieved =
    (* Planned vs achieved ranges into the flight recorder: achieved = 0
       records a refused split (the sequential fallback), and the width
       says how many lanes the achieved ranges were spread over. *)
    Telemetry.Events.emit
      (Telemetry.Events.Par_fanout { label; planned = parts; achieved; width = Par.domains () })
  in
  let dict = Hexa.Store_sig.dict store in
  match (resolve dict Binding.empty tp.s, resolve dict Binding.empty tp.p, resolve dict Binding.empty tp.o) with
  | Some s, Some p, Some o -> (
      let view, unpin = Hexa.Store_sig.pin store in
      Fun.protect ~finally:unpin (fun () ->
          match Hexa.Store_sig.scan_split view { Hexa.Pattern.s; p; o } pos ~parts with
          | None ->
              fanout 0;
              None
          | Some (_ord, ranges) ->
              fanout (Array.length ranges);
              (* The fan-out span hands its handle to every range task,
                 so the per-range spans (completing on pool domains)
                 attach under the submitting query's trace tree instead
                 of floating as per-domain roots. *)
              Telemetry.Trace.with_span_h "exec.bgp.parallel" (fun parent ->
                  let task range () =
                    Telemetry.Trace.with_span ~parent "exec.bgp.par_range" (fun () ->
                        let seed =
                          Seq.filter_map (extend_with Binding.empty tp) range
                          |> counted m_rows_scan
                        in
                        List.of_seq (List.fold_left (eval_choice view) seed rest))
                  in
                  let runs = Par.run (Array.map task ranges) in
                  Some (List.to_seq (List.concat (Array.to_list runs))))))
  | _ -> Some Seq.empty (* unknown constant: the pattern matches nothing *)

let eval_bgp store tps =
  let choices = Planner.plan store tps in
  Telemetry.Events.emit
    (Telemetry.Events.Plan_choice
       {
         label = Printf.sprintf "bgp(%d)" (List.length tps);
         detail =
           String.concat ";"
             (List.map
                (fun (c : Planner.choice) ->
                  Format.asprintf "%a" Planner.pp_strategy c.Planner.strategy)
                choices);
       });
  match choices with
  | ({ Planner.par = Some { Planner.par_parts; par_pos }; _ } as first) :: rest -> (
      match eval_bgp_parallel store first rest par_parts par_pos with
      | Some rows -> rows
      | None -> eval_plan store choices)
  | _ -> eval_plan store choices

(* --- grouping --------------------------------------------------------- *)

module Key = struct
  type t = Binding.value option list

  let compare = compare
end

module Kmap = Map.Make (Key)

let eval_group keys aggs solutions =
  let groups =
    List.fold_left
      (fun m sol ->
        let key = List.map (Binding.get sol) keys in
        let bucket = match Kmap.find_opt key m with Some b -> b | None -> [] in
        Kmap.add key (sol :: bucket) m)
      Kmap.empty solutions
  in
  (* SPARQL: an empty solution multiset with aggregates yields one group. *)
  let groups =
    if Kmap.is_empty groups && keys = [] then Kmap.singleton [] [] else groups
  in
  Kmap.fold
    (fun key bucket acc ->
      let base =
        List.fold_left2
          (fun b v value ->
            match value with None -> b | Some x -> Binding.bind b v x)
          Binding.empty keys key
      in
      let with_aggs =
        List.fold_left
          (fun b (out, agg) ->
            let n =
              match agg with
              | Count_all -> List.length bucket
              | Count_var v ->
                  List.length (List.filter (fun sol -> Binding.mem sol v) bucket)
              | Count_distinct v ->
                  List.sort_uniq compare
                    (List.filter_map (fun sol -> Binding.get sol v) bucket)
                  |> List.length
            in
            Binding.bind b out (Binding.Int n))
          base aggs
      in
      with_aggs :: acc)
    groups []
  |> List.rev

(* --- top-level evaluation --------------------------------------------- *)

let rec eval store (q : Algebra.t) : Binding.t Seq.t =
  let dict = Hexa.Store_sig.dict store in
  match q with
  | Bgp tps -> counted m_rows_bgp (eval_bgp store tps)
  | Join (a, b) ->
      let right =
        Telemetry.Trace.with_span "exec.join.build_right" (fun () -> List.of_seq (eval store b))
      in
      Seq.concat_map
        (fun sa -> List.to_seq (List.filter_map (merge_bindings sa) right))
        (eval store a)
      |> counted m_rows_join
  | Left_join (a, b) ->
      let right =
        Telemetry.Trace.with_span "exec.left_join.build_right" (fun () ->
            List.of_seq (eval store b))
      in
      Seq.concat_map
        (fun sa ->
          match List.filter_map (merge_bindings sa) right with
          | [] -> Seq.return sa
          | merged -> List.to_seq merged)
        (eval store a)
      |> counted m_rows_left_join
  | Union (a, b) -> counted m_rows_union (Seq.append (eval store a) (eval store b))
  | Values (vs, rows) ->
      (* Rows with a term unknown to the dictionary cannot join with any
         data; they are dropped (documented subset behaviour). *)
      List.to_seq rows
      |> Seq.filter_map (fun row ->
             let rec build b vars cells =
               match (vars, cells) with
               | [], [] -> Some b
               | v :: vars, cell :: cells -> (
                   match cell with
                   | None -> build b vars cells
                   | Some term -> (
                       match Dict.Term_dict.find_term dict term with
                       | Some id -> build (Binding.bind b v (Binding.Id id)) vars cells
                       | None -> None))
               | _ -> None
             in
             build Binding.empty vs row)
      |> counted m_rows_values
  | Filter (expr, q) ->
      counted m_rows_filter (Seq.filter (fun sol -> filter_pass dict sol expr) (eval store q))
  | Distinct q ->
      let seen = Hashtbl.create 64 in
      Seq.filter
        (fun sol ->
          let key = Binding.to_list sol in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (eval store q)
      |> counted m_rows_distinct
  | Project (vs, q) ->
      Seq.map
        (fun sol ->
          List.fold_left
            (fun b v ->
              match Binding.get sol v with None -> b | Some x -> Binding.bind b v x)
            Binding.empty vs)
        (eval store q)
      |> counted m_rows_project
  | Extend_group (keys, aggs, q) ->
      Telemetry.Trace.with_span "exec.group" (fun () ->
          List.to_seq (eval_group keys aggs (List.of_seq (eval store q))))
      |> counted m_rows_group
  | Order_by (orders, q) ->
      let sols =
        Telemetry.Trace.with_span "exec.order_by.collect" (fun () ->
            List.of_seq (eval store q))
      in
      let cmp a b =
        let rec loop = function
          | [] -> 0
          | { key; descending } :: rest ->
              let c =
                match (Binding.get a key, Binding.get b key) with
                | None, None -> 0
                | None, Some _ -> -1
                | Some _, None -> 1
                | Some x, Some y -> compare_values dict x y
              in
              if c <> 0 then if descending then -c else c else loop rest
        in
        loop orders
      in
      counted m_rows_order (List.to_seq (List.stable_sort cmp sols))
  | Slice (offset, limit, q) ->
      let s = eval store q in
      let s = match offset with None -> s | Some n -> Seq.drop n s in
      counted m_rows_slice (match limit with None -> s | Some n -> Seq.take n s)

(* Flight-recorder labels: the root operator plus the total pattern
   count — compact enough for a ring slot, specific enough to find the
   query again. *)
let rec pattern_count (q : Algebra.t) =
  match q with
  | Bgp tps -> List.length tps
  | Join (a, b) | Left_join (a, b) | Union (a, b) -> pattern_count a + pattern_count b
  | Values _ -> 0
  | Filter (_, q) | Distinct q | Project (_, q) | Extend_group (_, _, q)
  | Order_by (_, q)
  | Slice (_, _, q) ->
      pattern_count q

let root_op (q : Algebra.t) =
  match q with
  | Bgp _ -> "bgp"
  | Join _ -> "join"
  | Left_join _ -> "left-join"
  | Union _ -> "union"
  | Values _ -> "values"
  | Filter _ -> "filter"
  | Distinct _ -> "distinct"
  | Project _ -> "project"
  | Extend_group _ -> "group"
  | Order_by _ -> "order-by"
  | Slice _ -> "slice"

let query_label q = Printf.sprintf "%s/%dtp" (root_op q) (pattern_count q)

(* Bracket an entry point with flight-recorder events; the end event
   (and its row count) is only emitted on normal return, so a crash
   shows up in the dump as an unmatched query.start. *)
let recorded_entry q rows_of f =
  let label = query_label q in
  Telemetry.Events.emit (Telemetry.Events.Query_start { label });
  let x = f () in
  Telemetry.Events.emit (Telemetry.Events.Query_end { label; rows = rows_of x });
  x

let run_seq store q = eval store q

let run store q =
  recorded_entry q List.length (fun () ->
      Telemetry.Trace.with_span "exec.run" (fun () -> List.of_seq (eval store q)))

let ask store q =
  recorded_entry q
    (fun b -> if b then 1 else 0)
    (fun () ->
      Telemetry.Trace.with_span "exec.ask" (fun () -> not (Seq.is_empty (eval store q))))

let count store q =
  recorded_entry q Fun.id (fun () ->
      Telemetry.Trace.with_span "exec.count" (fun () -> Seq.length (eval store q)))

let construct store ~template q =
  recorded_entry q List.length @@ fun () ->
  Telemetry.Trace.with_span "exec.construct" @@ fun () ->
  let dict = Hexa.Store_sig.dict store in
  let term_of_atom sol = function
    | Term t -> Some t
    | Var v -> (
        match Binding.get sol v with None -> None | Some value -> Binding.term dict value)
  in
  let instantiate sol (tp : tp) =
    match (term_of_atom sol tp.s, term_of_atom sol tp.p, term_of_atom sol tp.o) with
    | Some s, Some p, Some o -> (
        match Rdf.Triple.make s p o with
        | triple -> Some triple
        | exception Invalid_argument _ -> None)
    | _ -> None
  in
  let out =
    Seq.fold_left
      (fun acc sol ->
        List.fold_left
          (fun acc tp ->
            match instantiate sol tp with
            | Some triple -> Rdf.Triple.Set.add triple acc
            | None -> acc)
          acc template)
      Rdf.Triple.Set.empty (eval store q)
  in
  Rdf.Triple.Set.elements out

(* --- EXPLAIN ---------------------------------------------------------- *)

type explain_node = {
  op : string;
  detail : string;
  estimate : int option;
  selectivity : float option;
  actual_rows : int option;
  time_s : float option;
  probes : int option;
  gc_words : float option;
  children : explain_node list;
}

let probe_total () =
  List.fold_left
    (fun acc (_, v) -> acc + v)
    0
    (Telemetry.Metrics.snapshot_counters ~prefix:"hexastore.probe." ())

let alloc_words () =
  let st = Gc.quick_stat () in
  (* [Gc.minor_words], not [st.minor_words]: quick_stat omits words
     allocated since the last minor collection, and per-operator windows
     are usually smaller than a minor heap. *)
  Gc.minor_words () +. st.Gc.major_words -. st.Gc.promoted_words

(* ANALYZE measurement of one sub-plan evaluation: rows and wall time
   always; with telemetry enabled also the index-probe counter delta and
   the GC words allocated, attributing physical cost to the operator. *)
let measure_eval ~analyze thunk =
  if not analyze then (None, None, None, None)
  else begin
    let profiled = !Telemetry.Config.enabled in
    let p0 = if profiled then probe_total () else 0 in
    let g0 = if profiled then alloc_words () else 0. in
    let t0 = Telemetry.Clock.now () in
    let n = thunk () in
    let time_s = Telemetry.Clock.now () -. t0 in
    let probes = if profiled then Some (probe_total () - p0) else None in
    let gc = if profiled then Some (alloc_words () -. g0) else None in
    (Some n, Some time_s, probes, gc)
  end

(* ANALYZE companion to the planner's [par=N] hint: how many ranges the
   store would actually split the driving scan into, via the same
   pinned-view [scan_split] the parallel path takes.  [Some 0] means
   the split would be refused at execution (sequential fallback). *)
let achieved_fanout store (c : Planner.choice) =
  match c.Planner.par with
  | None -> None
  | Some { Planner.par_parts; par_pos } -> (
      let tp = c.Planner.tp in
      let dict = Hexa.Store_sig.dict store in
      match (resolve dict Binding.empty tp.s, resolve dict Binding.empty tp.p, resolve dict Binding.empty tp.o) with
      | Some s, Some p, Some o ->
          let view, unpin = Hexa.Store_sig.pin store in
          Fun.protect ~finally:unpin (fun () ->
              match
                Hexa.Store_sig.scan_split view { Hexa.Pattern.s; p; o } par_pos
                  ~parts:par_parts
              with
              | None -> Some 0
              | Some (_ord, ranges) -> Some (Array.length ranges))
      | _ -> Some 0)

let rec explain_build ~analyze store (q : Algebra.t) : explain_node =
  (* ANALYZE evaluates each node's sub-plan independently (and plan
     prefixes for BGP scans), so a node's cost includes its inputs —
     cumulative, like the cold cost of running the query up to that
     operator.  Timings read the injectable {!Telemetry.Clock}. *)
  let node ?estimate ?selectivity op detail children =
    let actual_rows, time_s, probes, gc_words =
      measure_eval ~analyze (fun () -> Seq.length (eval store q))
    in
    { op; detail; estimate; selectivity; actual_rows; time_s; probes; gc_words; children }
  in
  let sub = explain_build ~analyze store in
  match q with
  | Bgp tps ->
      let choices = Planner.plan store tps in
      let scans =
        List.mapi
          (fun i (c : Planner.choice) ->
            let prefix = List.filteri (fun j _ -> j <= i) choices in
            let actual_rows, time_s, probes, gc_words =
              measure_eval ~analyze (fun () -> Seq.length (eval_plan store prefix))
            in
            {
              op = "scan";
              detail =
                Format.asprintf "%a index=%s strategy=%a%t%t" Algebra.pp_tp c.Planner.tp
                  (Hexa.Ordering.name c.Planner.index) Planner.pp_strategy c.Planner.strategy
                  (fun ppf ->
                    match c.Planner.par with
                    | Some { Planner.par_parts; _ } ->
                        Format.fprintf ppf " par=%d" par_parts;
                        if analyze then
                          Option.iter
                            (Format.fprintf ppf " achieved=%d")
                            (achieved_fanout store c)
                    | None -> ())
                  (fun ppf ->
                    (* Which index representation served the scan; raw is
                       the default and stays unannotated so pre-PR10
                       goldens read unchanged. *)
                    match Hexa.Store_sig.repr_name store with
                    | "raw" -> ()
                    | r -> Format.fprintf ppf " repr=%s" r);
              estimate = Some c.Planner.estimate;
              selectivity = Some c.Planner.selectivity;
              actual_rows;
              time_s;
              probes;
              gc_words;
              children = [];
            })
          choices
      in
      let summary =
        let count s = List.length (List.filter (fun c -> Planner.strategy_name c.Planner.strategy = s) choices) in
        let joins =
          List.filter_map
            (fun s -> match count s with 0 -> None | n -> Some (Printf.sprintf "%d %s" n s))
            [ "merge"; "hash"; "nested-loop" ]
        in
        if joins = [] then "" else ", joins: " ^ String.concat " + " joins
      in
      node "bgp" (Printf.sprintf "%d patterns%s" (List.length tps) summary) scans
  | Join (a, b) -> node "join" "" [ sub a; sub b ]
  | Left_join (a, b) -> node "left-join" "OPTIONAL" [ sub a; sub b ]
  | Union (a, b) -> node "union" "" [ sub a; sub b ]
  | Values (vs, rows) ->
      node
        ~estimate:(List.length rows)
        "values"
        (Printf.sprintf "[%s] %d rows" (String.concat " " (List.map (( ^ ) "?") vs))
           (List.length rows))
        []
  | Filter (expr, inner) -> node "filter" (Format.asprintf "%a" Algebra.pp_expr expr) [ sub inner ]
  | Distinct inner -> node "distinct" "" [ sub inner ]
  | Project (vs, inner) ->
      node "project" (Printf.sprintf "[%s]" (String.concat " " (List.map (( ^ ) "?") vs)))
        [ sub inner ]
  | Extend_group (keys, aggs, inner) ->
      node "group"
        (Format.asprintf "keys=[%s] aggs=[%s]"
           (String.concat " " (List.map (( ^ ) "?") keys))
           (String.concat " "
              (List.map
                 (fun (v, agg) -> Format.asprintf "?%s=%a" v Algebra.pp_aggregate agg)
                 aggs)))
        [ sub inner ]
  | Order_by (orders, inner) ->
      node "order-by"
        (String.concat " "
           (List.map
              (fun { Algebra.key; descending } ->
                Printf.sprintf "?%s%s" key (if descending then " desc" else ""))
              orders))
        [ sub inner ]
  | Slice (offset, limit, inner) ->
      let part name = function None -> [] | Some n -> [ Printf.sprintf "%s=%d" name n ] in
      node "slice" (String.concat " " (part "offset" offset @ part "limit" limit)) [ sub inner ]

let explain ?(analyze = false) store q =
  Telemetry.Trace.with_span "exec.explain" (fun () -> explain_build ~analyze store q)

let pp_explain_node ppf n =
  let detail = if n.detail = "" then "" else " " ^ n.detail in
  Format.fprintf ppf "%s%s" n.op detail;
  (match (n.estimate, n.selectivity) with
  | Some est, Some sel -> Format.fprintf ppf "  (est=%d sel=%.2e)" est sel
  | Some est, None -> Format.fprintf ppf "  (est=%d)" est
  | None, _ -> ());
  (match n.actual_rows with Some r -> Format.fprintf ppf "  rows=%d" r | None -> ());
  (match n.time_s with Some t -> Format.fprintf ppf " time=%.3fms" (t *. 1000.) | None -> ());
  (match n.probes with Some p -> Format.fprintf ppf " probes=%d" p | None -> ());
  match n.gc_words with Some w -> Format.fprintf ppf " gc=%.0fw" w | None -> ()

let pp_explain ppf root =
  let rec go prefix ppf n =
    let rec children ppf = function
      | [] -> ()
      | [ last ] ->
          Format.fprintf ppf "@,%s└─ %a" prefix (go (prefix ^ "   ")) last
      | child :: rest ->
          Format.fprintf ppf "@,%s├─ %a" prefix (go (prefix ^ "│  ")) child;
          children ppf rest
    in
    Format.fprintf ppf "%a%a" pp_explain_node n children n.children
  in
  Format.fprintf ppf "@[<v>%a@]" (go "") root

let rec explain_to_json n =
  let opt name enc = function None -> [] | Some v -> [ (name, enc v) ] in
  Telemetry.Json.Obj
    ([ ("op", Telemetry.Json.String n.op) ]
    @ (if n.detail = "" then [] else [ ("detail", Telemetry.Json.String n.detail) ])
    @ opt "estimate" (fun v -> Telemetry.Json.Int v) n.estimate
    @ opt "selectivity" (fun v -> Telemetry.Json.Float v) n.selectivity
    @ opt "actual_rows" (fun v -> Telemetry.Json.Int v) n.actual_rows
    @ opt "time_s" (fun v -> Telemetry.Json.Float v) n.time_s
    @ opt "probes" (fun v -> Telemetry.Json.Int v) n.probes
    @ opt "gc_words" (fun v -> Telemetry.Json.Float v) n.gc_words
    @
    match n.children with
    | [] -> []
    | children -> [ ("children", Telemetry.Json.List (List.map explain_to_json children)) ])
