(** A fixed-size OCaml 5 domain pool for intra-query parallelism.

    The executor fans a BGP's driving scan across [domains ()] lanes:
    the caller of {!run} plus [domains () - 1] lazily spawned worker
    domains sharing one job queue.  Pool size comes from the
    [HEXASTORE_DOMAINS] environment variable when set (clamped to
    [1, 64]), else [Domain.recommended_domain_count ()].  With a size of
    1 nothing is ever spawned and {!run} degenerates to a sequential
    loop.  An [at_exit] hook joins the workers, so processes exit
    cleanly whether or not they ever went parallel.

    The pool is instrumented end to end: always-on atomic tallies back
    the {!stats} snapshot (exact with telemetry off), and the same
    sites feed the registry — [par.tasks.*] / [par.domains.*] counters,
    [par.queue.depth] / [par.tasks.in_flight] / [par.pool.size] gauges,
    [par.task.wait_us] / [par.task.run_us] histograms and lazily
    registered [par.lane.<i>.tasks] per-lane counters — for the
    Prometheus exposition and [Telemetry.Monitor].  Lane 0 is every
    caller domain; lanes 1.. are the spawned workers. *)

val domains : unit -> int
(** Configured fan-out width (>= 1).  The planner reads this on every
    BGP to decide whether parallel scan ranges are worth planning. *)

val set_domains : int -> unit
(** Set the fan-out width (clamped to [1, 64]).  Already-spawned workers
    are kept (the pool never shrinks); missing ones are spawned on the
    next parallel {!run}. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** [with_domains n f] runs [f] with the width set to [n], restoring the
    previous width afterwards.  Used by the differential tests and the
    bench's speedup arms. *)

val run : (unit -> 'a) array -> 'a array
(** [run fs] evaluates every thunk, in parallel when the width and batch
    size allow, and returns their results in slot order.  The calling
    domain participates (it helps drain the queue rather than block), so
    concurrent or nested [run] calls cannot deadlock.  If a thunk
    raises, the batch still completes and the first-slot exception is
    re-raised in the caller.  Thunks must be safe to run on any domain:
    for store scans that means eagerly-seeked {!Hexa.Store_sig.scan_split}
    ranges over a pinned view. *)

val pool_size : unit -> int
(** Lanes currently backing {!run}: spawned workers + the caller.  1
    until a parallel [run] first spawns. *)

val shutdown : unit -> unit
(** Join all workers (normally invoked by the [at_exit] hook; exposed
    for tests).  The pool respawns lazily on the next parallel
    {!run}. *)

(** {1 Pool telemetry} *)

type stats = {
  width : int;          (** configured fan-out ({!domains}) *)
  pool : int;           (** live lanes: spawned workers + the caller *)
  queue_depth : int;    (** jobs enqueued and not yet started *)
  in_flight : int;      (** jobs started and not yet finished *)
  submitted : int;      (** tasks handed to the pool, ever (including
                            the sequential fast path) *)
  completed : int;      (** tasks finished, ever *)
  caller_helped : int;  (** queue pops by caller lanes draining jobs
                            instead of blocking *)
  spawned : int;        (** worker domains ever spawned *)
  joined : int;         (** worker domains joined by {!shutdown} *)
  lane_tasks : int array;
      (** tasks per lane, index 0 = callers, 1.. = workers; trimmed to
          the highest active lane.  Sums to [completed] when the pool
          is quiescent. *)
}

val stats : unit -> stats
(** Snapshot of the pool accounting.  The atomic tallies are exact and
    always on (no telemetry gate); [queue_depth] and [pool] are read
    under the pool lock.  Counter pairs ([submitted]/[completed]) are
    read independently, so a snapshot taken mid-batch may observe
    [submitted > completed + in_flight]. *)

val reset_stats : unit -> unit
(** Zero the atomic tallies (tests and the bench's pool figure).  Does
    not touch the registry mirrors — use [Telemetry.Metrics.reset_all]
    for those. *)
