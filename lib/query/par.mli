(** A fixed-size OCaml 5 domain pool for intra-query parallelism.

    The executor fans a BGP's driving scan across [domains ()] lanes:
    the caller of {!run} plus [domains () - 1] lazily spawned worker
    domains sharing one job queue.  Pool size comes from the
    [HEXASTORE_DOMAINS] environment variable when set (clamped to
    [1, 64]), else [Domain.recommended_domain_count ()].  With a size of
    1 nothing is ever spawned and {!run} degenerates to a sequential
    loop.  An [at_exit] hook joins the workers, so processes exit
    cleanly whether or not they ever went parallel. *)

val domains : unit -> int
(** Configured fan-out width (>= 1).  The planner reads this on every
    BGP to decide whether parallel scan ranges are worth planning. *)

val set_domains : int -> unit
(** Set the fan-out width (clamped to [1, 64]).  Already-spawned workers
    are kept (the pool never shrinks); missing ones are spawned on the
    next parallel {!run}. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** [with_domains n f] runs [f] with the width set to [n], restoring the
    previous width afterwards.  Used by the differential tests and the
    bench's speedup arms. *)

val run : (unit -> 'a) array -> 'a array
(** [run fs] evaluates every thunk, in parallel when the width and batch
    size allow, and returns their results in slot order.  The calling
    domain participates (it helps drain the queue rather than block), so
    concurrent or nested [run] calls cannot deadlock.  If a thunk
    raises, the batch still completes and the first-slot exception is
    re-raised in the caller.  Thunks must be safe to run on any domain:
    for store scans that means eagerly-seeked {!Hexa.Store_sig.scan_split}
    ranges over a pinned view. *)

val pool_size : unit -> int
(** Lanes currently backing {!run}: spawned workers + the caller.  1
    until a parallel [run] first spawns. *)

val shutdown : unit -> unit
(** Join all workers (normally invoked by the [at_exit] hook; exposed
    for tests).  The pool respawns lazily on the next parallel
    {!run}. *)
