type workload = (Pattern.shape * int) list

let workload_of_patterns patterns =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun pat ->
      let shape = Pattern.shape pat in
      Hashtbl.replace tally shape (1 + Option.value ~default:0 (Hashtbl.find_opt tally shape)))
    patterns;
  Hashtbl.fold (fun shape n acc -> (shape, n) :: acc) tally []
  |> List.sort compare

let orderings_used workload =
  List.fold_left
    (fun acc (shape, n) ->
      if n > 0 then Ordering.Set.add (Ordering.for_shape shape) acc else acc)
    Ordering.Set.empty workload

type recommendation = {
  keep : Ordering.t list;
  drop : Ordering.t list;
  native_fraction : float;
}

let recommend workload =
  let used = orderings_used workload in
  let keep = if Ordering.Set.is_empty used then Ordering.Set.singleton Ordering.Spo else used in
  let keep_list = Ordering.Set.elements keep in
  let drop =
    List.filter (fun ord -> not (Ordering.Set.mem ord keep)) Ordering.all
  in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 workload in
  let native =
    List.fold_left
      (fun acc (shape, n) ->
        let nat =
          Ordering.Set.mem (Ordering.for_shape shape) keep
          ||
          match shape with
          | Pattern.All | Pattern.Sp ->
              Ordering.Set.mem (Ordering.twin (Ordering.for_shape shape)) keep
          | _ -> false
        in
        if nat then acc + n else acc)
      0 workload
  in
  {
    keep = keep_list;
    drop;
    native_fraction = (if total = 0 then 1.0 else float_of_int native /. float_of_int total);
  }

let index_of h = function
  | Ordering.Spo -> Hexastore.spo h
  | Ordering.Sop -> Hexastore.sop h
  | Ordering.Pso -> Hexastore.pso h
  | Ordering.Pos -> Hexastore.pos h
  | Ordering.Osp -> Hexastore.osp h
  | Ordering.Ops -> Hexastore.ops h

(* Words of one ordering's terminal lists, walked through its index (each
   list visited once per ordering), mirroring the exact per-structure
   accounting of [Hexastore.memory_words]: a 4-word bucket entry per
   list plus the table's bucket array — stores seed their list tables at
   1024 buckets and the stdlib Hashtbl doubles once the entry count
   exceeds twice the bucket count. *)
let family_list_words h ord =
  let words = ref 0 and entries = ref 0 in
  Index.iter
    (fun _ v ->
      Pair_vector.iter
        (fun _ l ->
          incr entries;
          words := !words + 4 + Vectors.Sorted_ivec.memory_words l)
        v)
    (index_of h ord);
  let rec buckets b = if !entries > 2 * b then buckets (2 * b) else b in
  !words + buckets 1024 + 4

let estimate_memory_words h keep =
  let kept = Ordering.Set.of_list keep in
  let index_words =
    Ordering.Set.fold (fun ord acc -> acc + Index.memory_words (index_of h ord)) kept 0
  in
  (* One copy of each kept family's lists, regardless of whether one or
     both twins are kept. *)
  let families =
    Ordering.Set.fold
      (fun ord acc ->
        let representative =
          match ord with
          | Ordering.Spo | Ordering.Pso -> Ordering.Spo
          | Ordering.Sop | Ordering.Osp -> Ordering.Sop
          | Ordering.Pos | Ordering.Ops -> Ordering.Pos
        in
        Ordering.Set.add representative acc)
      kept Ordering.Set.empty
  in
  let list_words =
    Ordering.Set.fold (fun rep acc -> acc + family_list_words h rep) families 0
  in
  index_words + list_words

let savings_fraction h keep =
  let full = Hexastore.memory_words h in
  if full = 0 then 0.
  else 1. -. (float_of_int (estimate_memory_words h keep) /. float_of_int full)

let pp_recommendation ppf r =
  Format.fprintf ppf "keep {%s}, drop {%s}, %.0f%% of the workload served natively"
    (String.concat ", " (List.map Ordering.name r.keep))
    (String.concat ", " (List.map Ordering.name r.drop))
    (100. *. r.native_fraction)
