let enabled =
  ref
    (match Sys.getenv_opt "HEXASTORE_DEBUG" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

let count = ref 0

let validation_count () = !count

let note_validation () = incr count
