(* domain-safety: test-only — set from the environment at module init;
   flipped afterwards only by tests and debug tooling, never on
   production query paths (which merely read it). *)
let enabled =
  ref
    (match Sys.getenv_opt "HEXASTORE_DEBUG" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

(* domain-safety: test-only — incremented only while [enabled] is on,
   i.e. under the debug validation hooks; read by tests. *)
let count = ref 0

let validation_count () = !count

let note_validation () = incr count
