type t = {
  s : int option;
  p : int option;
  o : int option;
}

type shape =
  | All
  | Sp
  | So
  | Po
  | S
  | P
  | O
  | None_bound

type position =
  | Subj
  | Pred
  | Obj

let make ?s ?p ?o () = { s; p; o }

let wildcard = { s = None; p = None; o = None }

let of_triple (t : Dict.Term_dict.id_triple) = { s = Some t.s; p = Some t.p; o = Some t.o }

let shape = function
  | { s = Some _; p = Some _; o = Some _ } -> All
  | { s = Some _; p = Some _; o = None } -> Sp
  | { s = Some _; p = None; o = Some _ } -> So
  | { s = None; p = Some _; o = Some _ } -> Po
  | { s = Some _; p = None; o = None } -> S
  | { s = None; p = Some _; o = None } -> P
  | { s = None; p = None; o = Some _ } -> O
  | { s = None; p = None; o = None } -> None_bound

let value_at pat = function Subj -> pat.s | Pred -> pat.p | Obj -> pat.o

let position_name = function Subj -> "s" | Pred -> "p" | Obj -> "o"

let bound_count pat =
  let b = function Some _ -> 1 | None -> 0 in
  b pat.s + b pat.p + b pat.o

let matches pat (t : Dict.Term_dict.id_triple) =
  let ok v = function None -> true | Some x -> x = v in
  ok t.s pat.s && ok t.p pat.p && ok t.o pat.o

let equal a b = a = b

let pp ppf pat =
  let pp_pos ppf = function
    | None -> Format.pp_print_char ppf '?'
    | Some id -> Format.pp_print_int ppf id
  in
  Format.fprintf ppf "(%a, %a, %a)" pp_pos pat.s pp_pos pat.p pp_pos pat.o
