(** Triple access patterns over dictionary ids.

    A pattern fixes some of the three triple positions and leaves the rest
    as wildcards.  The 2{^3} = 8 shapes are exactly the "accessing schemes
    an RDF query may require" that §3 argues the six indices cover. *)

type t = {
  s : int option;
  p : int option;
  o : int option;
}

(** Which positions are bound.  Constructor names list the bound
    positions; [All] binds all three, [None_bound] none. *)
type shape =
  | All          (** (s, p, o) — membership test *)
  | Sp           (** (s, p, ?) *)
  | So           (** (s, ?, o) *)
  | Po           (** (?, p, o) *)
  | S            (** (s, ?, ?) *)
  | P            (** (?, p, ?) *)
  | O            (** (?, ?, o) *)
  | None_bound   (** (?, ?, ?) — full scan *)

(** A single triple position, by role.  (Named [Subj]/[Pred]/[Obj]
    rather than [S]/[P]/[O] to avoid clashing with the {!shape}
    constructors.) *)
type position =
  | Subj
  | Pred
  | Obj

val make : ?s:int -> ?p:int -> ?o:int -> unit -> t

val wildcard : t

val of_triple : Dict.Term_dict.id_triple -> t
(** Fully bound pattern. *)

val shape : t -> shape

val value_at : t -> position -> int option
(** The binding at one position. *)

val position_name : position -> string
(** ["s"], ["p"] or ["o"]. *)

val bound_count : t -> int
(** Number of bound positions (0–3). *)

val matches : t -> Dict.Term_dict.id_triple -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
