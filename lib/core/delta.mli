(** Write-optimized delta layer over a {!Hexastore}.

    §4.2 of the paper concedes that incremental insertion is the
    Hexastore's weak point: every triple does a binary insertion into
    sorted vectors in all six orderings, O(vector length) apiece.  This
    module stages mutations LSM-style instead: recent inserts and a
    delete set live in small hash-backed buffers in front of an
    immutable-ish base store, and every read merges
    [base ∪ inserts − deletes] lazily through the sorted-merge kernels
    in {!Vectors.Merge}, preserving each access pattern's natural index
    order.  When a buffer reaches its threshold the delta is drained
    into the six orderings through the base's sort-and-append bulk path
    ({!Hexastore.add_bulk_ids}) — amortized, not per-triple.

    Coherence invariants, validated by [Check.Invariant.delta]:
    no buffered insert is present in the base; the delete set is a
    subset of the base; the two buffers are disjoint.

    Telemetry (all under [hexastore.delta.*]): buffered-mutation
    counters ([insert.buffered], [delete.buffered],
    [insert.resurrected], [delete.unbuffered]), flush counters
    ([flush.calls], [flush.auto], [flush.rebuild], [compact.calls]),
    merged-read counter ([lookup.merged]), pending-size gauges
    ([pending_inserts], [pending_deletes]) and flush profiles
    ([flush_duration_us], [flush_batch]). *)

type t

type id_triple = Dict.Term_dict.id_triple = {
  s : int;
  p : int;
  o : int;
}

val default_insert_threshold : int
(** 4096 buffered inserts. *)

val default_delete_threshold : int
(** 1024 buffered deletes (tombstones also tax every read, so they drain
    sooner). *)

val create : ?dict:Dict.Term_dict.t -> ?insert_threshold:int -> ?delete_threshold:int -> unit -> t
(** A delta layer over a fresh empty base store.  Thresholds are clamped
    to at least 1. *)

val of_base : ?insert_threshold:int -> ?delete_threshold:int -> Hexastore.t -> t
(** Front an existing store with an empty delta. *)

val base : t -> Hexastore.t
(** The base store.  Reading it directly bypasses pending mutations;
    call {!flush} first for a complete view.  The base's identity is
    stable: rebuild-style flushes adopt the rebuilt contents in place
    (via {!Hexastore.replace_contents}), so external aliases — e.g. a
    {!Dataset} graph fronted by this delta — stay valid. *)

val dict : t -> Dict.Term_dict.t
val size : t -> int
(** Merged triple count: base + pending inserts − pending deletes. *)

val pending_inserts : t -> int
val pending_deletes : t -> int
val insert_threshold : t -> int
val delete_threshold : t -> int

val set_thresholds : ?insert:int -> ?delete:int -> t -> unit
(** Adjust auto-flush thresholds (clamped to ≥ 1).  Takes effect on the
    next mutation; lowering below the current backlog does not flush by
    itself. *)

(** {1 Id-level API} *)

val add_ids : t -> id_triple -> bool
(** Buffered insert; [false] if already visible in the merged view.
    Re-adding a tombstoned base triple cancels the tombstone.  May
    trigger an auto-flush. *)

val remove_ids : t -> id_triple -> bool
(** Buffered delete; [false] if absent from the merged view.  Removing a
    buffered insert just drops it from the buffer; removing a base
    triple records a tombstone.  May trigger an auto-flush. *)

val mem_ids : t -> id_triple -> bool

val add_bulk_ids : t -> id_triple array -> int
(** Flushes pending mutations, then bulk-loads through the base's
    sort-and-append path.  Returns the number of triples actually new. *)

val lookup : t -> Pattern.t -> id_triple Seq.t
(** Merged view: base ∪ buffered inserts − tombstones, lazily, in the
    same order {!Hexastore.lookup} serves the pattern's shape — callers
    cannot tell a delta-fronted store from a flushed one.  Matching
    buffer entries are snapshotted at call time. *)

val count : t -> Pattern.t -> int
(** Exact cardinality of {!lookup}: the base's O(log) count adjusted by
    an O(pending) scan of the buffers. *)

val fold : (id_triple -> 'a -> 'a) -> t -> 'a -> 'a
(** Over the merged view in (s, p, o) order. *)

val scan_sorted : t -> Pattern.t -> Pattern.position -> (Ordering.t * (int -> id_triple Seq.t)) option
(** Merged counterpart of {!Hexastore.scan_sorted}: the base's seekable
    sorted scan with snapshot-sorted buffered inserts merged in and
    tombstones filtered out, still ascending on the scan position — so a
    delta-fronted store stays merge-joinable under the same strategy
    rules as its base. *)

val scan_bounds : t -> Pattern.t -> Pattern.position -> parts:int -> int array
(** Interior boundary keys carving the merged scan into [parts]
    contiguous ranges; taken from the base's serving structure (see
    {!Hexastore.scan_bounds}), so insert-heavy deltas may yield
    unbalanced — never incorrect — parts. *)

val scan_split :
  t -> Pattern.t -> Pattern.position -> parts:int ->
  (Ordering.t * id_triple Seq.t array) option
(** {!scan_sorted} partitioned into up to [parts] contiguous ranges.
    Every seek runs eagerly during the call, so on a pinned snapshot the
    returned ranges are safe to force from distinct domains.  [None]
    exactly when {!scan_sorted} is. *)

(** {1 Snapshot pinning}

    The delta's concurrency protocol: one writer stages and flushes
    while any number of reader domains query pinned snapshots.  A
    snapshot shares the (frozen) base store and owns private copies of
    the staged buffers, so its merged view is stable for as long as it
    is held: {!flush}, {!compact} and the auto-flush wait until every
    pin is released before mutating the base, and new pins wait out an
    in-progress flush.  Readers must not mutate through a snapshot. *)

val pin : t -> t * (unit -> unit)
(** [pin t] is [(view, unpin)]: a read-only snapshot of the current
    merged view plus the closure releasing it.  [unpin] is idempotent;
    holding a pin blocks flushes, so release promptly. *)

val pins : t -> int
(** Number of currently held pins (diagnostic; exact only while pinners
    are quiescent). *)

val iter_pending_inserts : (id_triple -> unit) -> t -> unit
(** Buffered inserts, in hash order.  Invariant checking and tests. *)

val iter_pending_deletes : (id_triple -> unit) -> t -> unit

(** {1 Draining} *)

val flush : t -> unit
(** Apply tombstones to the base, then drain buffered inserts through
    the per-ordering sort-and-append bulk path.  A batch large relative
    to the base (≥ 1/8) rebuilds the whole store through the
    pure-append path instead of doing in-place insertions.  No-op when
    both buffers are empty. *)

val compact : t -> unit
(** {!flush} with the rebuild path forced: drains buffers and re-loads
    the base into right-sized fresh vectors. *)

(** {1 Term-level API} *)

val add : t -> Rdf.Triple.t -> bool
val remove : t -> Rdf.Triple.t -> bool
val mem : t -> Rdf.Triple.t -> bool

val find : t -> ?s:Rdf.Term.t -> ?p:Rdf.Term.t -> ?o:Rdf.Term.t -> unit -> Rdf.Triple.t Seq.t
(** Term-level pattern lookup over the merged view; a term unknown to
    the dictionary yields the empty sequence. *)

val to_triples : t -> Rdf.Triple.t list

val memory_words : t -> int
(** Base footprint plus an estimate of the pending buffers. *)
