(** Debug-only validation hooks.

    When {!enabled} is set, {!Hexastore.add_ids} and
    {!Hexastore.remove_ids} re-validate every vector and terminal list
    they touched (strict sortedness and pair-vector accounting) after the
    mutation, turning silent corruption into an immediate
    [Assert_failure] at the operation that caused it.

    The flag is [false] by default — the hooks cost a pass over the nine
    touched structures per mutation — and can be switched on for a
    process by exporting [HEXASTORE_DEBUG=1] (or [true]/[on]). *)

val enabled : bool ref
(** Gate for the insert/delete validation hooks.  Defaults to [false]
    unless the [HEXASTORE_DEBUG] environment variable says otherwise. *)

val validation_count : unit -> int
(** Number of times a hook has actually run since process start.  Lets
    tests prove the guard is off by default without provoking a
    corruption. *)

val note_validation : unit -> unit
(** Called by the hooks; exposed for the store only. *)
