open Vectors

type summary = {
  triples : int;
  distinct_subjects : int;
  distinct_properties : int;
  distinct_objects : int;
  memory_words : int;
  memory_mb : float;
  repr : string;
}

let words_to_mb w = float_of_int (w * 8) /. (1024. *. 1024.)

(* Refreshed on every {!summary}, so a telemetry export taken after a
   stats pass carries the store's current footprint. *)
let m_memory_words = Telemetry.Metrics.gauge "hexastore.memory_words"
let m_memory_mb = Telemetry.Metrics.gauge "hexastore.memory_mb"
let m_triples = Telemetry.Metrics.gauge "hexastore.size_triples"

let summary h =
  let memory_words = Hexastore.memory_words h in
  Telemetry.Metrics.set m_memory_words (float_of_int memory_words);
  Telemetry.Metrics.set m_memory_mb (words_to_mb memory_words);
  Telemetry.Metrics.set m_triples (float_of_int (Hexastore.size h));
  {
    triples = Hexastore.size h;
    distinct_subjects = Sorted_ivec.length (Hexastore.subjects h);
    distinct_properties = Sorted_ivec.length (Hexastore.properties h);
    distinct_objects = Sorted_ivec.length (Hexastore.objects h);
    memory_words;
    memory_mb = words_to_mb memory_words;
    repr = Hexastore.repr_name h;
  }

let property_histogram h =
  let acc = ref [] in
  Index.iter
    (fun p v -> acc := (p, Pair_vector.total v) :: !acc)
    (Hexastore.pso h);
  List.sort (fun (_, a) (_, b) -> compare b a) !acc

type entry_counts = {
  header_entries : int;
  vector_entries : int;
  list_entries : int;
}

let entry_counts h =
  let headers = ref 0 and vectors = ref 0 in
  List.iter
    (fun idx ->
      Index.iter
        (fun _ v ->
          incr headers;
          vectors := !vectors + Pair_vector.length v)
        idx)
    [ Hexastore.spo h; Hexastore.sop h; Hexastore.pso h; Hexastore.pos h;
      Hexastore.osp h; Hexastore.ops h ];
  (* Each shared terminal list is referenced by two orderings but its
     entries exist once; count them via one ordering per family. *)
  let lists = ref 0 in
  List.iter
    (fun idx -> Index.iter (fun _ v -> Pair_vector.iter (fun _ l -> lists := !lists + Sorted_ivec.length l) v) idx)
    [ Hexastore.spo h; Hexastore.sop h; Hexastore.pos h ];
  { header_entries = !headers; vector_entries = !vectors; list_entries = !lists }

let entries_per_triple h =
  let n = Hexastore.size h in
  if n = 0 then 0.
  else
    let c = entry_counts h in
    float_of_int (c.header_entries + c.vector_entries + c.list_entries) /. float_of_int (3 * n)

let selectivity h pat =
  let n = Hexastore.size h in
  if n = 0 then 0. else float_of_int (Hexastore.count h pat) /. float_of_int n

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>triples: %d@,subjects: %d@,properties: %d@,objects: %d@,memory: %.2f MB@,repr: %s@]"
    s.triples s.distinct_subjects s.distinct_properties s.distinct_objects s.memory_mb s.repr
