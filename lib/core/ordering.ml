type t =
  | Spo
  | Sop
  | Pso
  | Pos
  | Osp
  | Ops

let all = [ Spo; Sop; Pso; Pos; Osp; Ops ]

let name = function
  | Spo -> "spo"
  | Sop -> "sop"
  | Pso -> "pso"
  | Pos -> "pos"
  | Osp -> "osp"
  | Ops -> "ops"

let of_name = function
  | "spo" -> Some Spo
  | "sop" -> Some Sop
  | "pso" -> Some Pso
  | "pos" -> Some Pos
  | "osp" -> Some Osp
  | "ops" -> Some Ops
  | _ -> None

let for_shape = function
  | Pattern.All -> Spo       (* membership goes through the shared (s,p) o-list *)
  | Pattern.Sp -> Spo
  | Pattern.So -> Sop
  | Pattern.Po -> Pos
  | Pattern.S -> Spo
  | Pattern.P -> Pso
  | Pattern.O -> Osp
  | Pattern.None_bound -> Spo

let positions = function
  | Spo -> [ Pattern.Subj; Pattern.Pred; Pattern.Obj ]
  | Sop -> [ Pattern.Subj; Pattern.Obj; Pattern.Pred ]
  | Pso -> [ Pattern.Pred; Pattern.Subj; Pattern.Obj ]
  | Pos -> [ Pattern.Pred; Pattern.Obj; Pattern.Subj ]
  | Osp -> [ Pattern.Obj; Pattern.Subj; Pattern.Pred ]
  | Ops -> [ Pattern.Obj; Pattern.Pred; Pattern.Subj ]

let twin = function
  | Spo -> Pso
  | Pso -> Spo
  | Sop -> Osp
  | Osp -> Sop
  | Pos -> Ops
  | Ops -> Pos

let compare = Stdlib.compare

let equal a b = a = b

let pp ppf t = Format.pp_print_string ppf (name t)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
