type t = {
  headers : (int, Pair_vector.t) Hashtbl.t;
  sorted : Vectors.Sorted_ivec.t;
      (* Header ids, maintained sorted on every add/remove so that
         merge-scans over a whole ordering can stream headers without
         re-sorting the hash keys (O(h log h)) per call. *)
}

let create ?(initial_headers = 64) () =
  { headers = Hashtbl.create initial_headers; sorted = Vectors.Sorted_ivec.create () }

let header_count t = Hashtbl.length t.headers

let find_vector t h = Hashtbl.find_opt t.headers h

let get_or_create_vector t h =
  match Hashtbl.find_opt t.headers h with
  | Some v -> v
  | None ->
      let v = Pair_vector.create () in
      Hashtbl.add t.headers h v;
      ignore (Vectors.Sorted_ivec.add t.sorted h);
      v

let find_list t first second =
  match find_vector t first with None -> None | Some v -> Pair_vector.find v second

let remove_header t h =
  if Hashtbl.mem t.headers h then begin
    Hashtbl.remove t.headers h;
    ignore (Vectors.Sorted_ivec.remove t.sorted h);
    true
  end
  else false

let iter f t = Hashtbl.iter f t.headers

let iter_sorted f t =
  Vectors.Sorted_ivec.iter (fun h -> f h (Hashtbl.find t.headers h)) t.sorted

let headers t = Vectors.Sorted_ivec.copy t.sorted

let headers_view t = t.sorted

let total t = Hashtbl.fold (fun _ v acc -> acc + Pair_vector.total v) t.headers 0

let memory_words t =
  Hashtbl.fold (fun _ v acc -> acc + 3 + Pair_vector.memory_words v) t.headers 16
  + Vectors.Sorted_ivec.memory_words t.sorted

let check_invariant t =
  iter (fun _ v -> Pair_vector.check_invariant v) t;
  Vectors.Sorted_ivec.check_invariant t.sorted;
  assert (Vectors.Sorted_ivec.length t.sorted = Hashtbl.length t.headers);
  Vectors.Sorted_ivec.iter (fun h -> assert (Hashtbl.mem t.headers h)) t.sorted
