(* An ordering is either the mutable hash-of-pair-vectors build form or
   a flat compressed CSR layout: one sorted header stream, a packed
   row-pointer stream into one concatenated key stream, and a second
   packed row-pointer stream into one concatenated terminal stream.
   The flat form exists because the store's memory is dominated by the
   per-object overhead of hundreds of thousands of tiny lists and
   vectors, not by element widths — flattening removes the objects,
   the codecs then shrink the payload.  All reads go through
   [Sorted_ivec] slices / [Pair_vector] views, so the query layers
   never see the difference; mutation of a flat index raises, and the
   store swaps representations wholesale instead. *)

type hashed = {
  headers : (int, Pair_vector.t) Hashtbl.t;
  sorted : Vectors.Sorted_ivec.t;
      (* Header ids, maintained sorted on every add/remove so that
         merge-scans over a whole ordering can stream headers without
         re-sorting the hash keys (O(h log h)) per call. *)
}

type flat = {
  n_headers : int;
  fhdr_s : Vectors.Sorted_ivec.stream; (* h sorted header ids *)
  fheaders : Vectors.Sorted_ivec.t; (* whole-stream slice of fhdr_s *)
  fkey_off : Vectors.Sorted_ivec.stream; (* h+1 offsets into fkeys (packed) *)
  fkeys : Vectors.Sorted_ivec.stream; (* E second-level keys, one segment per header *)
  flist_off : Vectors.Sorted_ivec.stream; (* E+1 offsets into fterms (packed) *)
  fterms : Vectors.Sorted_ivec.stream; (* N terminal ids, one segment per (header,key) *)
}

type t = Hashed of hashed | Flat of flat

let create ?(initial_headers = 64) () =
  Hashed { headers = Hashtbl.create initial_headers; sorted = Vectors.Sorted_ivec.create () }

let is_flat = function Flat _ -> true | Hashed _ -> false

let header_count = function Hashed h -> Hashtbl.length h.headers | Flat f -> f.n_headers

let frozen op = invalid_arg ("Index." ^ op ^ ": flat compressed index is immutable")

(* The r-th header's pair vector, as a view over the streams. *)
let flat_vector f r =
  let k0 = Vectors.Sorted_ivec.stream_get f.fkey_off r in
  let k1 = Vectors.Sorted_ivec.stream_get f.fkey_off (r + 1) in
  let l0 = Vectors.Sorted_ivec.stream_get f.flist_off k0 in
  let l1 = Vectors.Sorted_ivec.stream_get f.flist_off k1 in
  Pair_vector.view
    ~keys:(Vectors.Sorted_ivec.slice f.fkeys ~off:k0 ~len:(k1 - k0))
    ~total:(l1 - l0)
    ~payload:(fun j ->
      let a = Vectors.Sorted_ivec.stream_get f.flist_off (k0 + j) in
      let b = Vectors.Sorted_ivec.stream_get f.flist_off (k0 + j + 1) in
      Vectors.Sorted_ivec.slice f.fterms ~off:a ~len:(b - a))

let flat_rank f h =
  let r = Vectors.Sorted_ivec.index_geq f.fheaders h in
  if r < f.n_headers && Vectors.Sorted_ivec.get f.fheaders r = h then Some r else None

let find_vector t h =
  match t with
  | Hashed t -> Hashtbl.find_opt t.headers h
  | Flat f -> ( match flat_rank f h with Some r -> Some (flat_vector f r) | None -> None)

let get_or_create_vector t h =
  match t with
  | Flat _ -> frozen "get_or_create_vector"
  | Hashed t -> (
      match Hashtbl.find_opt t.headers h with
      | Some v -> v
      | None ->
          let v = Pair_vector.create () in
          Hashtbl.add t.headers h v;
          ignore (Vectors.Sorted_ivec.add t.sorted h);
          v)

let find_list t first second =
  match t with
  | Hashed _ -> (
      match find_vector t first with None -> None | Some v -> Pair_vector.find v second)
  | Flat f -> (
      (* Straight to the terminal slice: two packed-offset reads after
         the two key binary searches, no intermediate view. *)
      match flat_rank f first with
      | None -> None
      | Some r ->
          let k0 = Vectors.Sorted_ivec.stream_get f.fkey_off r in
          let k1 = Vectors.Sorted_ivec.stream_get f.fkey_off (r + 1) in
          let keys = Vectors.Sorted_ivec.slice f.fkeys ~off:k0 ~len:(k1 - k0) in
          let j = Vectors.Sorted_ivec.index_geq keys second in
          if j < k1 - k0 && Vectors.Sorted_ivec.get keys j = second then begin
            let a = Vectors.Sorted_ivec.stream_get f.flist_off (k0 + j) in
            let b = Vectors.Sorted_ivec.stream_get f.flist_off (k0 + j + 1) in
            Some (Vectors.Sorted_ivec.slice f.fterms ~off:a ~len:(b - a))
          end
          else None)

let remove_header t h =
  match t with
  | Flat _ -> frozen "remove_header"
  | Hashed t ->
      if Hashtbl.mem t.headers h then begin
        Hashtbl.remove t.headers h;
        ignore (Vectors.Sorted_ivec.remove t.sorted h);
        true
      end
      else false

let iter f t =
  match t with
  | Hashed t -> Hashtbl.iter f t.headers
  | Flat fl ->
      for r = 0 to fl.n_headers - 1 do
        f (Vectors.Sorted_ivec.get fl.fheaders r) (flat_vector fl r)
      done

let iter_sorted f t =
  match t with
  | Hashed t -> Vectors.Sorted_ivec.iter (fun h -> f h (Hashtbl.find t.headers h)) t.sorted
  | Flat _ -> iter f t (* flat iteration is already in ascending header order *)

let headers t =
  match t with
  | Hashed t -> Vectors.Sorted_ivec.copy t.sorted
  | Flat f -> Vectors.Sorted_ivec.copy f.fheaders

let headers_view = function Hashed t -> t.sorted | Flat f -> f.fheaders

let total = function
  | Hashed t -> Hashtbl.fold (fun _ v acc -> acc + Pair_vector.total v) t.headers 0
  | Flat f -> Vectors.Sorted_ivec.stream_length f.fterms

(* Exact accounting.  Hashed: the table's own array + 4 words per
   entry (bucket cons: header, key, value, next) + each pair vector.
   Flat: the four streams, the header slice, and the spine records. *)
let memory_words = function
  | Hashed t ->
      let stats = Hashtbl.stats t.headers in
      Hashtbl.fold (fun _ v acc -> acc + 4 + Pair_vector.memory_words v) t.headers
        (stats.Hashtbl.num_buckets + 4)
      + Vectors.Sorted_ivec.memory_words t.sorted
  | Flat f ->
      2 (* Flat box *) + 8 (* flat record *)
      + Vectors.Sorted_ivec.memory_words f.fheaders
      + Vectors.Sorted_ivec.stream_memory_words f.fhdr_s
      + Vectors.Sorted_ivec.stream_memory_words f.fkey_off
      + Vectors.Sorted_ivec.stream_memory_words f.fkeys
      + Vectors.Sorted_ivec.stream_memory_words f.flist_off
      + Vectors.Sorted_ivec.stream_memory_words f.fterms

(* Rebuild any index as a flat compressed one.  [kind] picks the codec
   for the header/key/terminal streams; the two row-pointer streams are
   always bit-packed so offset reads stay O(1). *)
let compress ~kind t =
  if kind = Vectors.Sorted_ivec.Raw then invalid_arg "Index.compress: kind must be compressed";
  let h = header_count t in
  let e = ref 0 and n = ref 0 in
  iter
    (fun _ v ->
      e := !e + Pair_vector.length v;
      n := !n + Pair_vector.total v)
    t;
  let e = !e and n = !n in
  let hdrs = Array.make (max h 1) 0 in
  let key_off = Array.make (h + 1) 0 in
  let keys = Array.make (max e 1) 0 in
  let list_off = Array.make (e + 1) 0 in
  let terms = Array.make (max n 1) 0 in
  let hi = ref 0 and ei = ref 0 and ni = ref 0 in
  iter_sorted
    (fun hdr v ->
      hdrs.(!hi) <- hdr;
      key_off.(!hi) <- !ei;
      incr hi;
      Pair_vector.iter
        (fun key list ->
          keys.(!ei) <- key;
          list_off.(!ei) <- !ni;
          incr ei;
          Vectors.Sorted_ivec.iter
            (fun x ->
              terms.(!ni) <- x;
              incr ni)
            list)
        v)
    t;
  key_off.(h) <- e;
  list_off.(e) <- n;
  assert (!hi = h && !ei = e && !ni = n);
  let packed = Vectors.Sorted_ivec.Packed in
  let fhdr_s =
    Vectors.Sorted_ivec.stream_of_array kind ~segments:[| 0 |] (Array.sub hdrs 0 h)
  in
  Flat
    {
    n_headers = h;
    fhdr_s;
    fheaders = Vectors.Sorted_ivec.slice fhdr_s ~off:0 ~len:h;
    fkey_off = Vectors.Sorted_ivec.stream_of_array packed ~segments:[||] key_off;
    fkeys =
      Vectors.Sorted_ivec.stream_of_array kind ~segments:(Array.sub key_off 0 h)
        (Array.sub keys 0 e);
    flist_off = Vectors.Sorted_ivec.stream_of_array packed ~segments:[||] list_off;
      fterms =
        Vectors.Sorted_ivec.stream_of_array kind ~segments:(Array.sub list_off 0 e)
          (Array.sub terms 0 n);
    }

let block_violations = function
  | Hashed _ -> []
  | Flat f ->
      List.concat_map
        (fun (name, s) ->
          List.map
            (fun e -> name ^ ": " ^ e)
            (Vectors.Sorted_ivec.stream_validate s))
        [
          ("headers", f.fhdr_s);
          ("key_off", f.fkey_off);
          ("keys", f.fkeys);
          ("list_off", f.flist_off);
          ("terms", f.fterms);
        ]

let check_invariant t =
  (match t with
  | Hashed h ->
      Vectors.Sorted_ivec.check_invariant h.sorted;
      assert (Vectors.Sorted_ivec.length h.sorted = Hashtbl.length h.headers);
      Vectors.Sorted_ivec.iter (fun hd -> assert (Hashtbl.mem h.headers hd)) h.sorted
  | Flat f ->
      Vectors.Sorted_ivec.check_invariant f.fheaders;
      assert (Vectors.Sorted_ivec.length f.fheaders = f.n_headers);
      assert (block_violations t = []));
  iter (fun _ v -> Pair_vector.check_invariant v) t
