(** One of the six Hexastore orderings.

    An index maps a header resource (the first element of the ordering) to
    a {!Pair_vector.t} of second elements whose payloads are the shared
    terminal lists of third elements.  The module is ordering-agnostic:
    [Hexastore] instantiates six of these and decides which roles the
    three levels play. *)

type t

val create : ?initial_headers:int -> unit -> t
(** A fresh mutable (hashed) index. *)

val compress : kind:Vectors.Sorted_ivec.kind -> t -> t
(** Rebuild as a flat compressed index: headers, second-level keys and
    terminal ids become three shared codec streams addressed by two
    bit-packed row-pointer streams, and every lookup answers with
    zero-copy slices/views.  Flat indices are immutable — the mutating
    operations below raise [Invalid_argument]; the store swaps whole
    representations instead ([Hexastore.compress]/[inflate]).
    @raise Invalid_argument on [Raw]. *)

val is_flat : t -> bool

val block_violations : t -> string list
(** Codec-level audits of every backing stream (empty on hashed
    indices or when sound). *)

val header_count : t -> int

val find_vector : t -> int -> Pair_vector.t option
(** Pair vector under a header. *)

val get_or_create_vector : t -> int -> Pair_vector.t

val find_list : t -> int -> int -> Vectors.Sorted_ivec.t option
(** [find_list idx first second] is the terminal list under
    (first, second), if both levels exist. *)

val remove_header : t -> int -> bool

val iter : (int -> Pair_vector.t -> unit) -> t -> unit
(** Over headers in unspecified order (hash order). *)

val iter_sorted : (int -> Pair_vector.t -> unit) -> t -> unit
(** Over headers in ascending id order (streams the maintained sorted
    header vector; O(h)). *)

val headers : t -> Vectors.Sorted_ivec.t
(** Fresh sorted vector of header ids (a copy; safe to mutate). *)

val headers_view : t -> Vectors.Sorted_ivec.t
(** The index's own maintained sorted header vector — zero-copy, shared:
    callers must not mutate it.  Merge-scans seek into this directly. *)

val total : t -> int
(** Number of triples reachable through this index (sum of vector
    totals); equals the store size when the index is consistent. *)

val memory_words : t -> int
(** Headers and vectors only — terminal list contents are accounted once
    by the store. *)

val check_invariant : t -> unit
