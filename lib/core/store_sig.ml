(** The common store interface.

    The query engine, the harness and parts of the test suite are generic
    over "something that can answer triple patterns".  The Hexastore and
    both COVP baselines implement this signature; first-class modules
    ({!boxed}) let callers hold a heterogeneous store without functorising
    the world. *)

module type S = sig
  type t

  val name : string
  (** Display name ("Hexastore", "COVP1", "COVP2"). *)

  val dict : t -> Dict.Term_dict.t

  val size : t -> int

  val add_ids : t -> Dict.Term_dict.id_triple -> bool

  val add_bulk_ids : t -> Dict.Term_dict.id_triple array -> int

  val lookup : t -> Pattern.t -> Dict.Term_dict.id_triple Seq.t

  val count : t -> Pattern.t -> int
  (** Exact cardinality of [lookup t pat]; may cost a scan on shapes the
      store has no index for. *)

  val scan_sorted : t -> Pattern.t -> Pattern.position -> (Ordering.t * (int -> Dict.Term_dict.id_triple Seq.t)) option
  (** Seekable sorted scan of a constants-only pattern keyed on one free
      position (see {!Hexastore.scan_sorted}).  [None] when the store
      cannot stream the matches sorted on that position — the planner
      then falls back to hash or nested-loop joins. *)

  val scan_split :
    t -> Pattern.t -> Pattern.position -> parts:int ->
    (Ordering.t * Dict.Term_dict.id_triple Seq.t array) option
  (** [scan_sorted] partitioned into up to [parts] contiguous ranges
      whose in-order concatenation reproduces the unsplit stream exactly
      (see {!Hexastore.scan_split}).  [None] when the store cannot split
      — the executor then runs the scan sequentially. *)

  val pin : t -> (t * (unit -> unit)) option
  (** Snapshot isolation hook: [Some (view, unpin)] when the store
      distinguishes a stable read view from its live, writer-mutated
      self (see {!Delta.pin}); [None] for stores whose reads are already
      stable under the one-writer protocol. *)

  val repr_name : t -> string
  (** Effective index representation right now ("raw", "packed",
      "delta_varint").  Baseline stores are always "raw". *)

  val memory_words : t -> int
end

module Hexastore_store : S with type t = Hexastore.t = struct
  type t = Hexastore.t

  let name = "Hexastore"
  let dict = Hexastore.dict
  let size = Hexastore.size
  let add_ids = Hexastore.add_ids
  let add_bulk_ids = Hexastore.add_bulk_ids
  let lookup = Hexastore.lookup
  let count = Hexastore.count
  let scan_sorted = Hexastore.scan_sorted
  let scan_split = Hexastore.scan_split

  (* Queries never mutate, so with one writer paused there is nothing to
     isolate from: the live store is its own stable view. *)
  let pin _ = None
  let repr_name = Hexastore.repr_name
  let memory_words = Hexastore.memory_words
end

module Covp1_store : S with type t = Covp.t = struct
  type t = Covp.t

  let name = "COVP1"
  let dict = Covp.dict
  let size = Covp.size
  let add_ids = Covp.add_ids
  let add_bulk_ids = Covp.add_bulk_ids
  let lookup = Covp.lookup
  let count = Covp.count

  (* The COVP baselines keep only per-property tables; they cannot
     stream an arbitrary pattern sorted on a chosen position. *)
  let scan_sorted _ _ _ = None
  let scan_split _ _ _ ~parts:_ = None
  let pin _ = None
  let repr_name _ = "raw"
  let memory_words = Covp.memory_words
end

module Covp2_store : S with type t = Covp.t = struct
  include Covp1_store

  let name = "COVP2"
end

module Partial_store : S with type t = Partial.t = struct
  type t = Partial.t

  let name = "Partial"
  let dict = Partial.dict
  let size = Partial.size
  let add_ids = Partial.add_ids
  let add_bulk_ids = Partial.add_bulk_ids
  let lookup = Partial.lookup
  let count = Partial.count

  (* A partial store may be missing the ordering a sorted scan needs;
     stay conservative and let the planner fall back. *)
  let scan_sorted _ _ _ = None
  let scan_split _ _ _ ~parts:_ = None
  let pin _ = None
  let repr_name _ = "raw"
  let memory_words = Partial.memory_words
end

module Delta_store : S with type t = Delta.t = struct
  type t = Delta.t

  let name = "Hexastore+delta"
  let dict = Delta.dict
  let size = Delta.size
  let add_ids = Delta.add_ids
  let add_bulk_ids = Delta.add_bulk_ids
  let lookup = Delta.lookup
  let count = Delta.count
  let scan_sorted = Delta.scan_sorted
  let scan_split = Delta.scan_split
  let pin d = Some (Delta.pin d)
  let repr_name d = Hexastore.repr_name (Delta.base d)
  let memory_words = Delta.memory_words
end

type boxed = Boxed : (module S with type t = 'a) * 'a -> boxed

let box_hexastore h = Boxed ((module Hexastore_store), h)

let box_delta d = Boxed ((module Delta_store), d)

let box_partial p = Boxed ((module Partial_store), p)

let box_covp c =
  match Covp.kind c with
  | Covp.Covp1 -> Boxed ((module Covp1_store), c)
  | Covp.Covp2 -> Boxed ((module Covp2_store), c)

let name (Boxed ((module M), _)) = M.name
let dict (Boxed ((module M), store)) = M.dict store
let size (Boxed ((module M), store)) = M.size store
let add_ids (Boxed ((module M), store)) tr = M.add_ids store tr
let add_bulk_ids (Boxed ((module M), store)) trs = M.add_bulk_ids store trs
let lookup (Boxed ((module M), store)) pat = M.lookup store pat
let count (Boxed ((module M), store)) pat = M.count store pat
let scan_sorted (Boxed ((module M), store)) pat pos = M.scan_sorted store pat pos
let scan_split (Boxed ((module M), store)) pat pos ~parts = M.scan_split store pat pos ~parts

let pin (Boxed ((module M), store) as b) =
  match M.pin store with
  | None -> (b, fun () -> ())
  | Some (view, unpin) -> (Boxed ((module M), view), unpin)

let repr_name (Boxed ((module M), store)) = M.repr_name store
let memory_words (Boxed ((module M), store)) = M.memory_words store

let add_triple b triple =
  add_ids b (Dict.Term_dict.encode_triple (dict b) triple)

let load_triples b triples =
  let ids = Array.of_list (List.map (Dict.Term_dict.encode_triple (dict b)) triples) in
  add_bulk_ids b ids

let find b ?s ?p ?o () =
  let d = dict b in
  let resolve = function
    | None -> Some None
    | Some term -> (
        match Dict.Term_dict.find_term d term with None -> None | Some id -> Some (Some id))
  in
  match (resolve s, resolve p, resolve o) with
  | Some s, Some p, Some o ->
      Seq.map (Dict.Term_dict.decode_triple d) (lookup b { Pattern.s; p; o })
  | _ -> Seq.empty
