(** The Hexastore: sextuple indexing for RDF data (§4 of the paper).

    Every triple 〈s, p, o〉 is represented in all 3! = 6 orderings —
    [spo], [sop], [pso], [pos], [osp], [ops].  Each ordering maps a header
    resource to a sorted vector of second elements, each entry of which
    carries a sorted terminal list of third elements (Figure 2).  The
    three pairs of orderings that end in the same element physically share
    their terminal lists — [spo]/[pso] share o-lists, [sop]/[osp] share
    p-lists, [pos]/[ops] share s-lists — which is what bounds the space
    overhead at five times a raw triples table (§4.1).

    All vectors and lists are sorted, so every first-step pairwise join a
    query needs is a linear merge-join (§4.2).

    The store owns a {!Dict.Term_dict.t} mapping table; both an id-level
    API (used by the query engine and benchmarks) and a term-level API
    (used by applications) are provided. *)

type t

type id_triple = Dict.Term_dict.id_triple = {
  s : int;
  p : int;
  o : int;
}

val create : ?dict:Dict.Term_dict.t -> ?repr:Vectors.Sorted_ivec.kind -> unit -> t
(** A fresh empty store.  Pass [dict] to share a mapping table with
    another store (the benchmarks do this so Hexastore and the COVP
    baselines agree on ids).  [repr] selects the index representation:
    [Raw] (mutable, the default) or a compressed kind that
    {!add_bulk_ids} re-establishes after every bulk load.  When absent,
    read from the [HEXASTORE_REPR] environment variable
    ([raw]/[packed]/[delta_varint]).
    @raise Invalid_argument on an unknown [HEXASTORE_REPR] value. *)

val dict : t -> Dict.Term_dict.t

(** {1 Representation} *)

val repr : t -> Vectors.Sorted_ivec.kind
(** The configured target representation. *)

val repr_name : t -> string
(** The {e effective} representation right now: the configured kind's
    name while the store is flat-compressed, ["raw"] otherwise (e.g.
    after a point mutation inflated it). *)

val is_flat : t -> bool
(** Whether the six indices are currently flat compressed. *)

val compress : t -> unit
(** Re-encode the whole store into flat compressed indices of the
    configured kind (no-op when [repr] is [Raw] or already flat).
    Reads keep working unchanged through slices/views; point mutations
    transparently {!inflate} first.  Adds the recovered bytes to the
    [vectors.repr.bytes_saved] counter. *)

val inflate : t -> unit
(** Rebuild the mutable hashed representation from a flat store (no-op
    when already raw). *)

val size : t -> int
(** Number of distinct triples. *)

val replace_contents : t -> from:t -> unit
(** [replace_contents dst ~from:src] makes [dst] adopt [src]'s indices,
    terminal lists and size in place, preserving [dst]'s identity so any
    alias to it (a {!Dataset} graph slot, a {!Delta} base) observes the
    new contents.  Used by the delta layer's rebuild-style flush.
    @raise Invalid_argument if the two stores do not share a dictionary. *)

(** {1 Id-level API} *)

val add_ids : t -> id_triple -> bool
(** Insert; [false] if already present.  Touches all six indices — §4.2's
    noted update cost. *)

val remove_ids : t -> id_triple -> bool
(** Delete; [false] if absent.  Empty vectors and headers are pruned. *)

val mem_ids : t -> id_triple -> bool
(** O(log) membership via the shared o-list of (s, p). *)

val add_bulk_ids : t -> id_triple array -> int
(** Bulk load: sorts the batch once per list family so every index is
    filled by monotone appends; near-linear on an empty store.  Returns
    the number of triples actually new. *)

val lookup : t -> Pattern.t -> id_triple Seq.t
(** All matching triples, lazily, in the natural order of the index
    serving the pattern's shape.  Each of the 8 shapes is answered by the
    ordering that makes the access a header/vector/list traversal. *)

val count : t -> Pattern.t -> int
(** Exact cardinality of [lookup], in O(log) time for any shape (vector
    totals are maintained incrementally). *)

val fold : (id_triple -> 'a -> 'a) -> t -> 'a -> 'a
(** Over all triples in (s, p, o) order. *)

val scan_sorted : t -> Pattern.t -> Pattern.position -> (Ordering.t * (int -> id_triple Seq.t)) option
(** [scan_sorted t pat pos] is the seekable sorted scan behind the
    executor's merge joins: when [pos] is free in [pat], returns the
    ordering serving it plus a seek function — [seek k] streams the
    matching triples whose value at [pos] is [>= k], ascending on that
    value.  Seeks gallop forward from the previous hit
    ({!Vectors.Sorted_ivec.search_from}), so an ascending probe sequence
    costs the distance it covers.  On a Hexastore some ordering always
    serves a constants-only pattern, so this returns [None] only when
    [pos] is itself bound.  Counts as one probe of the serving
    ordering. *)

val scan_bounds : t -> Pattern.t -> Pattern.position -> parts:int -> int array
(** [scan_bounds t pat pos ~parts] is the interior boundary keys that
    carve [scan_sorted t pat pos]'s stream into [parts] contiguous,
    roughly size-balanced key ranges: a non-decreasing array of at most
    [parts - 1] values at [pos].  Empty when the pattern has no serving
    ordering, no matches, or [parts <= 1]. *)

val split_cursor :
  Pattern.position -> int array -> (int -> id_triple Seq.t) -> id_triple Seq.t array
(** [split_cursor pos bounds seek] carves a {!scan_sorted} seek cursor
    at the given interior boundaries: range [i] holds the matches whose
    value at [pos] lies in [[bounds.(i-1), bounds.(i))] (unbounded at
    the array's ends).  All seeks run eagerly during the call; the
    returned sequences share no mutable cursor state, so distinct
    ranges can be forced from distinct domains.  Concatenating the
    ranges in order reproduces the unsplit [seek min_int] stream
    exactly.  Shared so {!Delta} can split its merged cursors the same
    way. *)

val scan_split :
  t -> Pattern.t -> Pattern.position -> parts:int ->
  (Ordering.t * id_triple Seq.t array) option
(** [scan_split t pat pos ~parts] is {!scan_sorted} partitioned into up
    to [parts] contiguous ranges via {!scan_bounds}/{!split_cursor}.
    [None] exactly when {!scan_sorted} is. *)

(** {1 Direct vector/list accessors (the paper's notation)} *)

val objects_of_sp : t -> s:int -> p:int -> Vectors.Sorted_ivec.t option
(** The shared list o{_s}(p) = o{_p}(s). *)

val properties_of_so : t -> s:int -> o:int -> Vectors.Sorted_ivec.t option
(** The shared list p{_s}(o) = p{_o}(s). *)

val subjects_of_po : t -> p:int -> o:int -> Vectors.Sorted_ivec.t option
(** The shared list s{_p}(o) = s{_o}(p). *)

val spo : t -> Index.t
val sop : t -> Index.t
val pso : t -> Index.t
val pos : t -> Index.t
val osp : t -> Index.t
val ops : t -> Index.t

val subjects : t -> Vectors.Sorted_ivec.t
(** Sorted ids of all subjects (headers of [spo]); fresh vector. *)

val properties : t -> Vectors.Sorted_ivec.t
val objects : t -> Vectors.Sorted_ivec.t

(** {1 Term-level API} *)

val add : t -> Rdf.Triple.t -> bool
val add_list : t -> Rdf.Triple.t list -> int
(** Returns the number of new triples. *)

val of_triples : Rdf.Triple.t list -> t
val remove : t -> Rdf.Triple.t -> bool
val mem : t -> Rdf.Triple.t -> bool

val find : t -> ?s:Rdf.Term.t -> ?p:Rdf.Term.t -> ?o:Rdf.Term.t -> unit -> Rdf.Triple.t Seq.t
(** Term-level pattern lookup.  A term unknown to the dictionary yields
    the empty sequence (and does not allocate an id). *)

val count_terms : t -> ?s:Rdf.Term.t -> ?p:Rdf.Term.t -> ?o:Rdf.Term.t -> unit -> int

val to_triples : t -> Rdf.Triple.t list
(** All triples, decoded, in (s-id, p-id, o-id) order. *)

(** {1 Accounting and invariants} *)

val memory_words : t -> int
(** Structural footprint of the six indices plus the shared terminal
    lists (counted once), excluding the dictionary. *)

val memory_words_with_dict : t -> int

val check_invariant : t -> unit
(** Asserts: all vectors/lists sorted; the six indices describe the same
    triple set; totals consistent; terminal lists physically shared
    ([==]) between twin orderings.  Test/debug helper — O(size). *)
