(** The six index orderings, as first-class values.

    §4.1 names the orderings by the initials of the three RDF elements in
    priority order; this module gives the rest of the library a common
    vocabulary for talking about them (the advisor, the partial store,
    the usage reports). *)

type t =
  | Spo
  | Sop
  | Pso
  | Pos
  | Osp
  | Ops

val all : t list
(** In the paper's order: spo, sop, pso, pos, osp, ops. *)

val name : t -> string
(** Lowercase three-letter name. *)

val of_name : string -> t option

(** Which ordering serves each access shape natively (the one
    {!Hexastore.lookup} uses). *)
val for_shape : Pattern.shape -> t

val positions : t -> Pattern.position list
(** The three triple positions in this ordering's priority order,
    e.g. [positions Pos = [Pred; Obj; Subj]]. *)

val twin : t -> t
(** The ordering sharing this one's terminal lists (§4.1):
    spo↔pso, sop↔osp, pos↔ops. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
