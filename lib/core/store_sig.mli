(** The common store interface.

    The query engine, the harness and parts of the test suite are generic
    over "something that can answer triple patterns".  The Hexastore and
    both COVP baselines implement this signature; first-class modules
    ({!boxed}) let callers hold a heterogeneous store without functorising
    the world. *)

module type S = sig
  type t

  val name : string
  (** Display name ("Hexastore", "COVP1", "COVP2"). *)

  val dict : t -> Dict.Term_dict.t

  val size : t -> int

  val add_ids : t -> Dict.Term_dict.id_triple -> bool

  val add_bulk_ids : t -> Dict.Term_dict.id_triple array -> int

  val lookup : t -> Pattern.t -> Dict.Term_dict.id_triple Seq.t

  val count : t -> Pattern.t -> int
  (** Exact cardinality of [lookup t pat]; may cost a scan on shapes the
      store has no index for. *)

  val scan_sorted : t -> Pattern.t -> Pattern.position -> (Ordering.t * (int -> Dict.Term_dict.id_triple Seq.t)) option
  (** Seekable sorted scan of a constants-only pattern keyed on one free
      position (see {!Hexastore.scan_sorted}): [seek k] streams matches
      whose value at the position is [>= k], ascending on that value.
      [None] when the store cannot serve the matches in that order — the
      planner then falls back to hash or nested-loop joins.  A Hexastore
      always serves it; the COVP baselines and the partial store never
      do; a delta layer merges its buffers into the base's scan. *)

  val scan_split :
    t -> Pattern.t -> Pattern.position -> parts:int ->
    (Ordering.t * Dict.Term_dict.id_triple Seq.t array) option
  (** [scan_sorted] partitioned into up to [parts] contiguous ranges
      whose in-order concatenation reproduces the unsplit stream exactly
      (see {!Hexastore.scan_split}); every seek runs eagerly during the
      call, so the ranges are safe to force from distinct domains.
      [None] when the store cannot split — the executor then runs the
      scan sequentially. *)

  val pin : t -> (t * (unit -> unit)) option
  (** Snapshot isolation hook: [Some (view, unpin)] when the store
      distinguishes a stable read view from its live, writer-mutated
      self (see {!Delta.pin}); [None] for stores whose reads are already
      stable under the one-writer protocol. *)

  val repr_name : t -> string
  (** Effective index representation right now ("raw", "packed",
      "delta_varint"; see {!Hexastore.repr_name}).  Baseline stores are
      always "raw". *)

  val memory_words : t -> int
end

module Hexastore_store : S with type t = Hexastore.t

module Covp1_store : S with type t = Covp.t

module Covp2_store : S with type t = Covp.t

module Partial_store : S with type t = Partial.t

module Delta_store : S with type t = Delta.t
(** The write-optimized delta layer: reads serve the merged
    [base ∪ inserts − deletes] view, so the planner and executor work
    over it unchanged. *)

(** A store packed with its operations. *)
type boxed = Boxed : (module S with type t = 'a) * 'a -> boxed

val box_hexastore : Hexastore.t -> boxed

val box_delta : Delta.t -> boxed

val box_partial : Partial.t -> boxed

val box_covp : Covp.t -> boxed
(** Picks the COVP1 or COVP2 vtable from {!Covp.kind}. *)

(** Convenience wrappers dispatching through the box. *)

val name : boxed -> string
val dict : boxed -> Dict.Term_dict.t
val size : boxed -> int
val add_ids : boxed -> Dict.Term_dict.id_triple -> bool
val add_bulk_ids : boxed -> Dict.Term_dict.id_triple array -> int
val lookup : boxed -> Pattern.t -> Dict.Term_dict.id_triple Seq.t
val count : boxed -> Pattern.t -> int

val scan_sorted :
  boxed -> Pattern.t -> Pattern.position -> (Ordering.t * (int -> Dict.Term_dict.id_triple Seq.t)) option

val scan_split :
  boxed -> Pattern.t -> Pattern.position -> parts:int ->
  (Ordering.t * Dict.Term_dict.id_triple Seq.t array) option

val pin : boxed -> boxed * (unit -> unit)
(** [pin b] is [(view, unpin)]: a stable read view of [b] plus its
    release.  For stores without a pinning protocol the view is [b]
    itself and [unpin] a no-op, so callers can pin unconditionally. *)

val repr_name : boxed -> string

val memory_words : boxed -> int

val add_triple : boxed -> Rdf.Triple.t -> bool
(** Encode through the box's dictionary, then insert. *)

val load_triples : boxed -> Rdf.Triple.t list -> int
(** Bulk-encode and bulk-load; returns the number of new triples. *)

val find : boxed -> ?s:Rdf.Term.t -> ?p:Rdf.Term.t -> ?o:Rdf.Term.t -> unit -> Rdf.Triple.t Seq.t
(** Term-level pattern lookup; unknown terms yield the empty sequence. *)
