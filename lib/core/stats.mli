(** Store statistics and space accounting.

    Serves three purposes: the selectivity numbers the query planner
    orders joins by, the per-property profile the workload generators are
    validated against, and the space report behind the Fig. 15
    reproduction (including the §4.1 worst-case 5× entry bound). *)

type summary = {
  triples : int;
  distinct_subjects : int;
  distinct_properties : int;
  distinct_objects : int;
  memory_words : int;
  memory_mb : float;
  repr : string;  (** effective representation ({!Hexastore.repr_name}) *)
}

val summary : Hexastore.t -> summary
(** Refreshes the memory gauges with the {e exact} per-structure
    accounting aggregated through [Index.memory_words] (bucket arrays,
    entry conses, codec streams — everything counted once). *)

val property_histogram : Hexastore.t -> (int * int) list
(** (property id, triple count) pairs, descending by count.  The Barton
    generator's heavy-tail shape is checked against this. *)

(** Breakdown of index entries, for the 5× space-bound check: how many
    header, vector and terminal-list slots each resource key occupies. *)
type entry_counts = {
  header_entries : int;   (** keys appearing as index headers (≤ 6/triple-key naively, 2 per role) *)
  vector_entries : int;   (** keys stored in second-level vectors *)
  list_entries : int;     (** keys stored in terminal lists *)
}

val entry_counts : Hexastore.t -> entry_counts

val entries_per_triple : Hexastore.t -> float
(** Total key entries divided by (3 × triples) — i.e. entries per
    resource occurrence.  §4.1's worst case is 5: "the key of each of the
    three resources in a triple appears in two headers and two vectors,
    but only in one list".  The invariant test asserts it never
    exceeds 5.0. *)

val selectivity : Hexastore.t -> Pattern.t -> float
(** Estimated fraction of the store matched by a pattern, in [0, 1];
    exact counts divided by size.  The planner sorts BGP patterns by
    this. *)

val pp_summary : Format.formatter -> summary -> unit
