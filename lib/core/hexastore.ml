open Vectors

type id_triple = Dict.Term_dict.id_triple = {
  s : int;
  p : int;
  o : int;
}

(* Telemetry: per-ordering probe/insert/delete counters, indexed in the
   order of {!Ordering.all}, plus a histogram of terminal scan sizes
   (list length or vector total enumerated by a lookup).  Every hook is
   a single flag read while telemetry is off. *)
let ord_index = function
  | Ordering.Spo -> 0
  | Ordering.Sop -> 1
  | Ordering.Pso -> 2
  | Ordering.Pos -> 3
  | Ordering.Osp -> 4
  | Ordering.Ops -> 5

let counter_family event =
  Array.of_list
    (List.map
       (fun o -> Telemetry.Metrics.counter ("hexastore." ^ event ^ "." ^ Ordering.name o))
       Ordering.all)

let m_probe = counter_family "probe"
let m_insert = counter_family "insert"
let m_delete = counter_family "delete"
let m_scan_len = Telemetry.Metrics.histogram "hexastore.scan.terminal_size"

let note_ord o = Telemetry.Metrics.incr m_probe.(ord_index o)
let note_probe shape = note_ord (Ordering.for_shape shape)

(* Every mutation touches all six orderings (§4.2's update cost), so the
   whole family advances together. *)
let note_mutation family n =
  if !Telemetry.Config.enabled then Array.iter (fun c -> Telemetry.Metrics.add c n) family

(* The structural fields are mutable solely so {!replace_contents} can
   rebuild a store in place while aliases (datasets, delta layers) keep
   pointing at the same [t]. *)
type t = {
  dict : Dict.Term_dict.t;
  mutable spo : Index.t;
  mutable sop : Index.t;
  mutable pso : Index.t;
  mutable pos : Index.t;
  mutable osp : Index.t;
  mutable ops : Index.t;
  (* Shared terminal-list families, keyed by packed id pairs. *)
  mutable o_lists : (int, Sorted_ivec.t) Hashtbl.t;  (* (s,p) -> objects;    spo & pso *)
  mutable p_lists : (int, Sorted_ivec.t) Hashtbl.t;  (* (s,o) -> properties; sop & osp *)
  mutable s_lists : (int, Sorted_ivec.t) Hashtbl.t;  (* (p,o) -> subjects;   pos & ops *)
  mutable size : int;
  mutable repr : Sorted_ivec.kind;
      (* Target representation: [Raw] stores stay mutable; a compressed
         kind makes [add_bulk_ids] end with a whole-store [compress],
         and point mutations [inflate] back to the mutable form. *)
}

let repr_of_env () =
  match Sys.getenv_opt "HEXASTORE_REPR" with
  | None | Some "" -> Sorted_ivec.Raw
  | Some s -> (
      match Sorted_ivec.kind_of_name s with
      | Some k -> k
      | None -> invalid_arg (Printf.sprintf "HEXASTORE_REPR: unknown representation %S" s))

let create ?dict ?repr () =
  let dict = match dict with Some d -> d | None -> Dict.Term_dict.create () in
  let repr = match repr with Some r -> r | None -> repr_of_env () in
  {
    dict;
    spo = Index.create ();
    sop = Index.create ();
    pso = Index.create ();
    pos = Index.create ();
    osp = Index.create ();
    ops = Index.create ();
    o_lists = Hashtbl.create 1024;
    p_lists = Hashtbl.create 1024;
    s_lists = Hashtbl.create 1024;
    size = 0;
    repr;
  }

let dict t = t.dict

let is_flat t = Index.is_flat t.spo

let repr t = t.repr

let repr_name t = if is_flat t then Sorted_ivec.kind_name t.repr else "raw"

(* In-place structural adoption: [dst] takes over [src]'s indices and
   terminal lists while keeping its own identity, so aliases to [dst]
   (a dataset's graph table, a delta layer's base) observe the rebuilt
   contents.  Both stores must share one dictionary — ids are only
   meaningful relative to it. *)
let replace_contents dst ~from:src =
  if dst.dict != src.dict then
    invalid_arg "Hexastore.replace_contents: stores must share a dictionary";
  dst.spo <- src.spo;
  dst.sop <- src.sop;
  dst.pso <- src.pso;
  dst.pos <- src.pos;
  dst.osp <- src.osp;
  dst.ops <- src.ops;
  dst.o_lists <- src.o_lists;
  dst.p_lists <- src.p_lists;
  dst.s_lists <- src.s_lists;
  dst.size <- src.size;
  dst.repr <- src.repr

let size t = t.size
(* Handing out an index is counted as a probe of it: the benchmark
   query strategies read indices through these accessors, and the
   hexastore.probe.* counters are how EXPLAIN and the bench artifact
   attribute work to index families. *)
let spo t = note_ord Ordering.Spo; t.spo
let sop t = note_ord Ordering.Sop; t.sop
let pso t = note_ord Ordering.Pso; t.pso
let pos t = note_ord Ordering.Pos; t.pos
let osp t = note_ord Ordering.Osp; t.osp
let ops t = note_ord Ordering.Ops; t.ops

let get_or_create_list table key =
  match Hashtbl.find_opt table key with
  | Some l -> l
  | None ->
      let l = Sorted_ivec.create ~capacity:2 () in
      Hashtbl.add table key l;
      l

(* Register the shared list [l] under (first, second) in an index, and
   account one more triple under that header's vector. *)
let link index ~first ~second l =
  let v = Index.get_or_create_vector index first in
  ignore (Pair_vector.get_or_insert v second (fun () -> l));
  Pair_vector.bump_total v 1

(* Debug-only hook (see {!Debug}): after a mutation, re-validate every
   vector and list it touched.  Gated on [Debug.enabled] so the cost is a
   single flag read in normal operation. *)
let debug_validate t { s; p; o } =
  Debug.note_validation ();
  let check_list table key =
    match Hashtbl.find_opt table key with
    | Some l -> Sorted_ivec.check_invariant l
    | None -> ()
  in
  check_list t.o_lists (Pair_key.make s p);
  check_list t.p_lists (Pair_key.make s o);
  check_list t.s_lists (Pair_key.make p o);
  let check_vector index first =
    match Index.find_vector index first with
    | Some v -> Pair_vector.check_invariant v
    | None -> ()
  in
  check_vector t.spo s;
  check_vector t.sop s;
  check_vector t.pso p;
  check_vector t.pos p;
  check_vector t.osp o;
  check_vector t.ops o

let add_ids t { s; p; o } =
  let o_list = get_or_create_list t.o_lists (Pair_key.make s p) in
  if not (Sorted_ivec.add o_list o) then false
  else begin
    link t.spo ~first:s ~second:p o_list;
    link t.pso ~first:p ~second:s o_list;
    let p_list = get_or_create_list t.p_lists (Pair_key.make s o) in
    ignore (Sorted_ivec.add p_list p);
    link t.sop ~first:s ~second:o p_list;
    link t.osp ~first:o ~second:s p_list;
    let s_list = get_or_create_list t.s_lists (Pair_key.make p o) in
    ignore (Sorted_ivec.add s_list s);
    link t.pos ~first:p ~second:o s_list;
    link t.ops ~first:o ~second:p s_list;
    t.size <- t.size + 1;
    note_mutation m_insert 1;
    if !Debug.enabled then debug_validate t { s; p; o };
    true
  end

let mem_ids t { s; p; o } =
  if is_flat t then
    (* Flat stores keep no list tables — answer via the spo streams. *)
    match Index.find_list t.spo s p with
    | None -> false
    | Some l -> Sorted_ivec.mem l o
  else
    match Hashtbl.find_opt t.o_lists (Pair_key.make s p) with
    | None -> false
    | Some l -> Sorted_ivec.mem l o

(* Undo one triple's contribution to an index: decrement the header
   vector's total and, when the shared list has gone empty, unlink the
   vector entry (and the header when the vector empties). *)
let unlink index ~first ~second ~list_empty =
  match Index.find_vector index first with
  | None -> assert false
  | Some v ->
      Pair_vector.bump_total v (-1);
      if list_empty then begin
        ignore (Pair_vector.remove v second);
        if Pair_vector.length v = 0 then ignore (Index.remove_header index first)
      end

let remove_ids t { s; p; o } =
  let key_sp = Pair_key.make s p in
  match Hashtbl.find_opt t.o_lists key_sp with
  | None -> false
  | Some o_list ->
      if not (Sorted_ivec.remove o_list o) then false
      else begin
        let o_empty = Sorted_ivec.is_empty o_list in
        if o_empty then Hashtbl.remove t.o_lists key_sp;
        unlink t.spo ~first:s ~second:p ~list_empty:o_empty;
        unlink t.pso ~first:p ~second:s ~list_empty:o_empty;
        let key_so = Pair_key.make s o in
        (match Hashtbl.find_opt t.p_lists key_so with
        | None -> assert false
        | Some p_list ->
            ignore (Sorted_ivec.remove p_list p);
            let p_empty = Sorted_ivec.is_empty p_list in
            if p_empty then Hashtbl.remove t.p_lists key_so;
            unlink t.sop ~first:s ~second:o ~list_empty:p_empty;
            unlink t.osp ~first:o ~second:s ~list_empty:p_empty);
        let key_po = Pair_key.make p o in
        (match Hashtbl.find_opt t.s_lists key_po with
        | None -> assert false
        | Some s_list ->
            ignore (Sorted_ivec.remove s_list s);
            let s_empty = Sorted_ivec.is_empty s_list in
            if s_empty then Hashtbl.remove t.s_lists key_po;
            unlink t.pos ~first:p ~second:o ~list_empty:s_empty;
            unlink t.ops ~first:o ~second:p ~list_empty:s_empty);
        t.size <- t.size - 1;
        note_mutation m_delete 1;
        if !Debug.enabled then debug_validate t { s; p; o };
        true
      end

(* --- bulk loading --------------------------------------------------- *)

let cmp_spo (a : id_triple) (b : id_triple) =
  let c = Int.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Int.compare a.p b.p in
    if c <> 0 then c else Int.compare a.o b.o

let cmp_sop (a : id_triple) (b : id_triple) =
  let c = Int.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Int.compare a.o b.o in
    if c <> 0 then c else Int.compare a.p b.p

let cmp_pos (a : id_triple) (b : id_triple) =
  let c = Int.compare a.p b.p in
  if c <> 0 then c
  else
    let c = Int.compare a.o b.o in
    if c <> 0 then c else Int.compare a.s b.s

let add_bulk_ids t triples =
  (* Pass A — sorted by (s, p, o): o-lists, spo, pso all receive keys in
     monotone order, so every insertion hits the O(1) append path on an
     initially-empty store.  Duplicates (within the batch or against the
     store) are detected here and excluded from the later passes. *)
  let arr = Array.copy triples in
  Array.sort cmp_spo arr;
  let fresh = ref [] in
  let fresh_count = ref 0 in
  Array.iter
    (fun tr ->
      let o_list = get_or_create_list t.o_lists (Pair_key.make tr.s tr.p) in
      if Sorted_ivec.add o_list tr.o then begin
        link t.spo ~first:tr.s ~second:tr.p o_list;
        link t.pso ~first:tr.p ~second:tr.s o_list;
        fresh := tr :: !fresh;
        incr fresh_count
      end)
    arr;
  let fresh = Array.of_list !fresh in
  (* Pass B — sorted by (s, o, p): p-lists, sop, osp. *)
  Array.sort cmp_sop fresh;
  Array.iter
    (fun tr ->
      let p_list = get_or_create_list t.p_lists (Pair_key.make tr.s tr.o) in
      ignore (Sorted_ivec.add p_list tr.p);
      link t.sop ~first:tr.s ~second:tr.o p_list;
      link t.osp ~first:tr.o ~second:tr.s p_list)
    fresh;
  (* Pass C — sorted by (p, o, s): s-lists, pos, ops. *)
  Array.sort cmp_pos fresh;
  Array.iter
    (fun tr ->
      let s_list = get_or_create_list t.s_lists (Pair_key.make tr.p tr.o) in
      ignore (Sorted_ivec.add s_list tr.s);
      link t.pos ~first:tr.p ~second:tr.o s_list;
      link t.ops ~first:tr.o ~second:tr.p s_list)
    fresh;
  t.size <- t.size + !fresh_count;
  note_mutation m_insert !fresh_count;
  !fresh_count

(* --- lookup ---------------------------------------------------------- *)

let seq_of_list_opt = function None -> Seq.empty | Some l -> Sorted_ivec.to_seq l

(* Expand one header's pair vector into triples, [build second third]. *)
let seq_of_vector build v =
  Seq.concat_map
    (fun (second, l) -> Seq.map (fun third -> build second third) (Sorted_ivec.to_seq l))
    (Pair_vector.to_seq v)

let seq_of_header index build h =
  match Index.find_vector index h with
  | None -> Seq.empty
  | Some v -> seq_of_vector build v

let full_scan t =
  Seq.concat_map
    (fun s -> seq_of_header t.spo (fun p o -> { s; p; o }) s)
    (Sorted_ivec.to_seq (Index.headers t.spo))

let scan_list_opt l =
  (match l with
  | Some l -> Telemetry.Metrics.observe m_scan_len (Sorted_ivec.length l)
  | None -> ());
  seq_of_list_opt l

let scan_header index build h =
  (match Index.find_vector index h with
  | Some v -> Telemetry.Metrics.observe m_scan_len (Pair_vector.total v)
  | None -> ());
  seq_of_header index build h

let lookup t (pat : Pattern.t) =
  let shape = Pattern.shape pat in
  note_probe shape;
  match shape with
  | Pattern.All ->
      let tr = { s = Option.get pat.s; p = Option.get pat.p; o = Option.get pat.o } in
      if mem_ids t tr then Seq.return tr else Seq.empty
  | Pattern.Sp ->
      let s = Option.get pat.s and p = Option.get pat.p in
      Seq.map (fun o -> { s; p; o }) (scan_list_opt (Index.find_list t.spo s p))
  | Pattern.So ->
      let s = Option.get pat.s and o = Option.get pat.o in
      Seq.map (fun p -> { s; p; o }) (scan_list_opt (Index.find_list t.sop s o))
  | Pattern.Po ->
      let p = Option.get pat.p and o = Option.get pat.o in
      Seq.map (fun s -> { s; p; o }) (scan_list_opt (Index.find_list t.pos p o))
  | Pattern.S ->
      let s = Option.get pat.s in
      scan_header t.spo (fun p o -> { s; p; o }) s
  | Pattern.P ->
      let p = Option.get pat.p in
      scan_header t.pso (fun s o -> { s; p; o }) p
  | Pattern.O ->
      let o = Option.get pat.o in
      scan_header t.osp (fun s p -> { s; p; o }) o
  | Pattern.None_bound -> full_scan t

let count t (pat : Pattern.t) =
  let shape = Pattern.shape pat in
  note_probe shape;
  match shape with
  | Pattern.All ->
      if mem_ids t { s = Option.get pat.s; p = Option.get pat.p; o = Option.get pat.o } then 1
      else 0
  | Pattern.Sp -> (
      match Index.find_list t.spo (Option.get pat.s) (Option.get pat.p) with
      | None -> 0
      | Some l -> Sorted_ivec.length l)
  | Pattern.So -> (
      match Index.find_list t.sop (Option.get pat.s) (Option.get pat.o) with
      | None -> 0
      | Some l -> Sorted_ivec.length l)
  | Pattern.Po -> (
      match Index.find_list t.pos (Option.get pat.p) (Option.get pat.o) with
      | None -> 0
      | Some l -> Sorted_ivec.length l)
  | Pattern.S -> (
      match Index.find_vector t.spo (Option.get pat.s) with
      | None -> 0
      | Some v -> Pair_vector.total v)
  | Pattern.P -> (
      match Index.find_vector t.pso (Option.get pat.p) with
      | None -> 0
      | Some v -> Pair_vector.total v)
  | Pattern.O -> (
      match Index.find_vector t.osp (Option.get pat.o) with
      | None -> 0
      | Some v -> Pair_vector.total v)
  | Pattern.None_bound -> t.size

let fold f t acc = Seq.fold_left (fun acc tr -> f tr acc) acc (full_scan t)

(* --- sorted merge scans ---------------------------------------------- *)

let index_of t = function
  | Ordering.Spo -> t.spo
  | Ordering.Sop -> t.sop
  | Ordering.Pso -> t.pso
  | Ordering.Pos -> t.pos
  | Ordering.Osp -> t.osp
  | Ordering.Ops -> t.ops

(* Triple from an ordering's (first, second, third) priority values. *)
let builder = function
  | Ordering.Spo -> fun a b c -> { s = a; p = b; o = c }
  | Ordering.Sop -> fun a b c -> { s = a; p = c; o = b }
  | Ordering.Pso -> fun a b c -> { s = b; p = a; o = c }
  | Ordering.Pos -> fun a b c -> { s = c; p = a; o = b }
  | Ordering.Osp -> fun a b c -> { s = b; p = c; o = a }
  | Ordering.Ops -> fun a b c -> { s = c; p = b; o = a }

(* The ordering that lists [pat]'s bound positions first (in some
   order), then [pos], then only free positions — i.e. the ordering
   under which [pat]'s matches stream sorted on the value at [pos].
   Because all 3! orderings exist, some ordering always qualifies for a
   constants-only pattern with [pos] free. *)
let serving_ordering (pat : Pattern.t) (pos : Pattern.position) =
  let bound q = Pattern.value_at pat q <> None in
  if bound pos then None
  else
    List.find_opt
      (fun ord ->
        let rec check = function
          | [] -> false
          | q :: rest -> if q = pos then List.for_all (fun r -> not (bound r)) rest else bound q && check rest
        in
        check (Ordering.positions ord))
      Ordering.all

(* A seek function over a sorted terminal list: [seek k] streams the
   suffix of elements [>= k].  The cursor resumes from the last hit
   (galloping), resetting defensively when a re-traversed sequence seeks
   backwards. *)
let seek_list l of_elt =
  let n = Sorted_ivec.length l in
  let last_k = ref min_int and last_i = ref 0 in
  fun k ->
    let from = if k < !last_k then 0 else !last_i in
    let i = Sorted_ivec.search_from l ~from k in
    last_k := k;
    last_i := i;
    let rec aux i () =
      if i >= n then Seq.Nil else Seq.Cons (of_elt (Sorted_ivec.get l i), aux (i + 1))
    in
    aux i

let scan_sorted t (pat : Pattern.t) (pos : Pattern.position) =
  match serving_ordering pat pos with
  | None -> None
  | Some ord ->
      note_ord ord;
      let index = index_of t ord in
      let build = builder ord in
      let value q = Pattern.value_at pat q in
      let seek =
        match List.map value (Ordering.positions ord) with
        | [ Some first; Some second; None ] -> (
            (* Both prefix levels bound: the matches are one shared
               terminal list, keyed directly by the scan position. *)
            match Index.find_list index first second with
            | None -> fun _ -> Seq.empty
            | Some l ->
                Telemetry.Metrics.observe m_scan_len (Sorted_ivec.length l);
                seek_list l (fun third -> build first second third))
        | [ Some first; None; None ] -> (
            (* One bound level: seek over the header's pair vector keys,
               expanding each payload list lazily. *)
            match Index.find_vector index first with
            | None -> fun _ -> Seq.empty
            | Some v ->
                Telemetry.Metrics.observe m_scan_len (Pair_vector.total v);
                let n = Pair_vector.length v in
                let last_k = ref min_int and last_i = ref 0 in
                fun k ->
                  let from = if k < !last_k then 0 else !last_i in
                  let i = Pair_vector.search_from v ~from k in
                  last_k := k;
                  last_i := i;
                  let rec aux i () =
                    if i >= n then Seq.Nil
                    else
                      let second = Pair_vector.key_at v i in
                      let l = Pair_vector.payload_at v i in
                      Seq.append
                        (Seq.map (fun third -> build first second third) (Sorted_ivec.to_seq l))
                        (aux (i + 1))
                        ()
                  in
                  aux i)
        | [ None; None; None ] ->
            (* Fully free: seek over the maintained sorted header vector,
               expanding each header's whole subtree lazily. *)
            let hs = Index.headers_view index in
            let expand first =
              match Index.find_vector index first with
              | None -> Seq.empty
              | Some v ->
                  Seq.concat_map
                    (fun (second, l) ->
                      Seq.map (fun third -> build first second third) (Sorted_ivec.to_seq l))
                    (Pair_vector.to_seq v)
            in
            let seek_headers = seek_list hs (fun h -> h) in
            fun k -> Seq.concat_map expand (seek_headers k)
        | _ ->
            (* serving_ordering guarantees bound-prefix shapes only. *)
            assert false
      in
      Some (ord, seek)

(* --- range-splittable cursors ----------------------------------------- *)

(* Interior boundary keys that carve [pat]'s sorted scan on [pos] into
   [parts] contiguous key ranges.  Boundaries are taken at quantile
   indices of the serving structure (terminal-list elements, pair-vector
   keys or headers), so parts are balanced by structural size, not exact
   triple count — a skewed payload can unbalance the one-bound shape,
   which costs speedup, never correctness.  The result is non-decreasing
   with at most [parts - 1] entries; duplicate or degenerate boundaries
   simply yield empty ranges downstream. *)
let scan_bounds t (pat : Pattern.t) (pos : Pattern.position) ~parts =
  match serving_ordering pat pos with
  | None -> [||]
  | Some ord ->
      let index = index_of t ord in
      let value q = Pattern.value_at pat q in
      let boundaries n get =
        if parts <= 1 || n = 0 then [||]
        else Array.init (parts - 1) (fun j -> get ((j + 1) * n / parts))
      in
      (match List.map value (Ordering.positions ord) with
      | [ Some first; Some second; None ] -> (
          match Index.find_list index first second with
          | None -> [||]
          | Some l -> boundaries (Sorted_ivec.length l) (Sorted_ivec.get l))
      | [ Some first; None; None ] -> (
          match Index.find_vector index first with
          | None -> [||]
          | Some v -> boundaries (Pair_vector.length v) (Pair_vector.key_at v))
      | [ None; None; None ] ->
          let hs = Index.headers_view index in
          boundaries (Sorted_ivec.length hs) (Sorted_ivec.get hs)
      | _ ->
          (* serving_ordering guarantees bound-prefix shapes only. *)
          assert false)

(* Carve a seek cursor into contiguous per-range sequences at the given
   interior boundaries: range 0 holds keys below [bounds.(0)], range i
   the keys in [bounds.(i-1), bounds.(i)), the last range everything
   from the final boundary up.  All seeks run eagerly here, in ascending
   order (reusing the cursor's gallop state); the returned sequences
   share no mutable state afterwards, so distinct ranges are safe to
   force from distinct domains.  Concatenating the ranges in order
   reproduces the unsplit [seek min_int] stream exactly. *)
let split_cursor (pos : Pattern.position) bounds seek =
  let value_of (tr : id_triple) =
    match pos with Pattern.Subj -> tr.s | Pattern.Pred -> tr.p | Pattern.Obj -> tr.o
  in
  let k = Array.length bounds in
  let parts = Array.make (k + 1) Seq.empty in
  for i = 0 to k do
    let s = if i = 0 then seek min_int else seek bounds.(i - 1) in
    parts.(i) <- (if i = k then s else Seq.take_while (fun tr -> value_of tr < bounds.(i)) s)
  done;
  parts

let scan_split t pat pos ~parts =
  match scan_sorted t pat pos with
  | None -> None
  | Some (ord, seek) -> Some (ord, split_cursor pos (scan_bounds t pat pos ~parts) seek)

(* --- direct accessors ------------------------------------------------ *)

let probe_lists ord r =
  note_ord ord;
  (match r with
  | Some l when !Telemetry.Config.enabled ->
      Telemetry.Metrics.observe m_scan_len (Sorted_ivec.length l)
  | _ -> ());
  r

(* The paper-notation accessors read the shared tables directly on raw
   stores; a flat store has no tables, so they take the two-level index
   path (same lists, as slices of the terminal streams). *)
let objects_of_sp t ~s ~p =
  probe_lists Ordering.Spo
    (if is_flat t then Index.find_list t.spo s p
     else Hashtbl.find_opt t.o_lists (Pair_key.make s p))

let properties_of_so t ~s ~o =
  probe_lists Ordering.Sop
    (if is_flat t then Index.find_list t.sop s o
     else Hashtbl.find_opt t.p_lists (Pair_key.make s o))

let subjects_of_po t ~p ~o =
  probe_lists Ordering.Pos
    (if is_flat t then Index.find_list t.pos p o
     else Hashtbl.find_opt t.s_lists (Pair_key.make p o))

let subjects t = Index.headers t.spo
let properties t = Index.headers t.pso
let objects t = Index.headers t.osp

(* --- accounting ------------------------------------------------------- *)

(* Exact accounting: the table's bucket array plus 4 words per entry
   (bucket cons: block header, key, value, next) plus each list's own
   footprint.  On flat stores the tables are empty husks and the
   terminal payloads are counted inside the indices' streams. *)
let lists_memory table =
  let stats = Hashtbl.stats table in
  Hashtbl.fold
    (fun _ l acc -> acc + 4 + Sorted_ivec.memory_words l)
    table
    (stats.Hashtbl.num_buckets + 4)

let memory_words t =
  Index.memory_words t.spo + Index.memory_words t.sop + Index.memory_words t.pso
  + Index.memory_words t.pos + Index.memory_words t.osp + Index.memory_words t.ops
  + lists_memory t.o_lists + lists_memory t.p_lists + lists_memory t.s_lists

let memory_words_with_dict t = memory_words t + Dict.Term_dict.memory_words t.dict

(* --- representation switching ----------------------------------------- *)

(* Whole-store re-encode into six flat compressed indices.  The shared
   list tables are dropped (their contents live on, concatenated inside
   the terminal streams); point mutations revert via {!inflate}. *)
let compress t =
  if t.repr <> Sorted_ivec.Raw && not (is_flat t) then begin
    let before = memory_words t in
    let kind = t.repr in
    t.spo <- Index.compress ~kind t.spo;
    t.sop <- Index.compress ~kind t.sop;
    t.pso <- Index.compress ~kind t.pso;
    t.pos <- Index.compress ~kind t.pos;
    t.osp <- Index.compress ~kind t.osp;
    t.ops <- Index.compress ~kind t.ops;
    t.o_lists <- Hashtbl.create 1;
    t.p_lists <- Hashtbl.create 1;
    t.s_lists <- Hashtbl.create 1;
    Sorted_ivec.note_bytes_saved ((before - memory_words t) * 8)
  end

(* Rebuild the mutable hashed form from the flat streams — the write
   path's escape hatch. *)
let inflate t =
  if is_flat t then begin
    let all = Array.of_seq (full_scan t) in
    t.spo <- Index.create ();
    t.sop <- Index.create ();
    t.pso <- Index.create ();
    t.pos <- Index.create ();
    t.osp <- Index.create ();
    t.ops <- Index.create ();
    t.o_lists <- Hashtbl.create 1024;
    t.p_lists <- Hashtbl.create 1024;
    t.s_lists <- Hashtbl.create 1024;
    t.size <- 0;
    ignore (add_bulk_ids t all : int)
  end

(* Public mutation entry points: shadow the raw implementations above
   with representation-aware wrappers.  Point mutations inflate first
   and leave the store raw (recompressing per triple would be O(n));
   bulk loads re-establish the configured representation at the end, so
   a delta-layer flush lands compressed again. *)
let add_ids t tr =
  if is_flat t then inflate t;
  add_ids t tr

let remove_ids t tr =
  if is_flat t then inflate t;
  remove_ids t tr

let add_bulk_ids t triples =
  if is_flat t then inflate t;
  let n = add_bulk_ids t triples in
  if t.repr <> Sorted_ivec.Raw then compress t;
  n

(* --- term-level API --------------------------------------------------- *)

let add t triple = add_ids t (Dict.Term_dict.encode_triple t.dict triple)

let add_list t triples =
  List.fold_left (fun n triple -> if add t triple then n + 1 else n) 0 triples

let of_triples triples =
  let t = create () in
  let ids = Array.of_list (List.map (Dict.Term_dict.encode_triple t.dict) triples) in
  ignore (add_bulk_ids t ids);
  t

let remove t triple =
  match Dict.Term_dict.find_triple t.dict triple with
  | None -> false
  | Some ids -> remove_ids t ids

let mem t triple =
  match Dict.Term_dict.find_triple t.dict triple with
  | None -> false
  | Some ids -> mem_ids t ids

let pattern_of_terms t ?s ?p ?o () =
  let find = Dict.Term_dict.find_term t.dict in
  let resolve = function
    | None -> Some None  (* wildcard *)
    | Some term -> ( match find term with None -> None | Some id -> Some (Some id))
  in
  match (resolve s, resolve p, resolve o) with
  | Some s, Some p, Some o -> Some { Pattern.s; p; o }
  | _ -> None  (* some term is unknown: nothing can match *)

let find t ?s ?p ?o () =
  match pattern_of_terms t ?s ?p ?o () with
  | None -> Seq.empty
  | Some pat -> Seq.map (Dict.Term_dict.decode_triple t.dict) (lookup t pat)

let count_terms t ?s ?p ?o () =
  match pattern_of_terms t ?s ?p ?o () with None -> 0 | Some pat -> count t pat

let to_triples t =
  List.of_seq (Seq.map (Dict.Term_dict.decode_triple t.dict) (full_scan t))

(* --- invariants ------------------------------------------------------- *)

let check_invariant t =
  (* Twin orderings share terminal lists physically on raw stores; a
     flat store materialises fresh slice headers per lookup, so sharing
     there means equal windows onto one stream — logical equality. *)
  let same_list a b = if is_flat t then Sorted_ivec.equal a b else a == b in
  Index.check_invariant t.spo;
  Index.check_invariant t.sop;
  Index.check_invariant t.pso;
  Index.check_invariant t.pos;
  Index.check_invariant t.osp;
  Index.check_invariant t.ops;
  (* The six indices must agree on the triple set and on its size. *)
  assert (Index.total t.spo = t.size);
  assert (Index.total t.sop = t.size);
  assert (Index.total t.pso = t.size);
  assert (Index.total t.pos = t.size);
  assert (Index.total t.osp = t.size);
  assert (Index.total t.ops = t.size);
  (* Terminal lists must be physically shared between twin orderings. *)
  Index.iter
    (fun s v ->
      Pair_vector.iter
        (fun p l ->
          (match Index.find_list t.pso p s with
          | Some l' -> assert (same_list l l')
          | None -> assert false);
          Sorted_ivec.iter
            (fun o ->
              (* Every spo triple is visible through sop/osp and pos/ops. *)
              (match Index.find_list t.sop s o with
              | Some pl ->
                  assert (Sorted_ivec.mem pl p);
                  (match Index.find_list t.osp o s with
                  | Some pl' -> assert (same_list pl pl')
                  | None -> assert false)
              | None -> assert false);
              match Index.find_list t.pos p o with
              | Some sl ->
                  assert (Sorted_ivec.mem sl s);
                  (match Index.find_list t.ops o p with
                  | Some sl' -> assert (same_list sl sl')
                  | None -> assert false)
              | None -> assert false)
            l)
        v)
    t.spo
