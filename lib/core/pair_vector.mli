(** A sorted vector of second-level keys, each carrying a terminal list.

    This is the middle layer of every Hexastore index (Figure 2 of the
    paper): under a header resource, a sorted vector of second-element
    keys, where each entry points at the sorted list of third elements.
    The payload lists are *shared* with the twin index that ends in the
    same element (§4.1), so they are stored by reference and this module
    never copies them.

    Keys are kept strictly increasing; insertion is by binary search with
    an O(1) amortised fast path for ascending (bulk-load) arrivals. *)

type t

val create : ?capacity:int -> unit -> t

val view :
  keys:Vectors.Sorted_ivec.t ->
  total:int ->
  payload:(int -> Vectors.Sorted_ivec.t) ->
  t
(** An immutable pair vector over precomputed parts — the flat
    compressed index's lookup result.  [keys] is the (possibly
    compressed-slice) sorted key vector, [total] the triple count under
    it, and [payload j] materialises the [j]-th terminal-list slice.
    Mutating operations ({!get_or_insert}, {!remove}, {!bump_total})
    raise [Invalid_argument] on views. *)

val length : t -> int
(** Number of (key, list) entries. *)

val total : t -> int
(** Total number of triples under this vector: the maintained sum of the
    payload list lengths.  Kept up to date by {!bump_total}, giving O(1)
    cardinality answers for single-bound patterns. *)

val bump_total : t -> int -> unit
(** [bump_total v d] adds [d] (possibly negative) to {!total}.  Called by
    the store when a shared payload list changes size. *)

val find : t -> int -> Vectors.Sorted_ivec.t option
(** Payload of a key, by binary search. *)

val get_or_insert : t -> int -> (unit -> Vectors.Sorted_ivec.t) -> Vectors.Sorted_ivec.t
(** [get_or_insert v key mk] returns the payload of [key], inserting
    [mk ()] first when the key is new. *)

val remove : t -> int -> bool
(** Delete a key and its payload reference; [false] when absent. *)

val key_at : t -> int -> int
val payload_at : t -> int -> Vectors.Sorted_ivec.t

val keys : t -> Vectors.Sorted_ivec.t
(** A fresh sorted vector of the keys (copies; O(n)). *)

val iter : (int -> Vectors.Sorted_ivec.t -> unit) -> t -> unit
(** In ascending key order. *)

val to_seq : t -> (int * Vectors.Sorted_ivec.t) Seq.t

val index_geq : t -> int -> int

val search_from : t -> from:int -> int -> int
(** [search_from v ~from k] is the index of the smallest key [>= k] at
    position [>= from] — a galloping lower bound, O(log gap).  The
    resumable-cursor primitive behind the store's sorted merge scans. *)

val memory_words : t -> int
(** Words for keys and payload *references* (payload contents are counted
    once, via the store's shared list tables). *)

val check_invariant : t -> unit
