exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

(* Format 2 (PR 10) adds one representation byte right after the magic
   — inside the checksum — recording the store's configured codec so a
   compressed store round-trips byte-identically (same tag out, same
   tag back in, recompression on load).  Format-1 blobs still load, as
   raw stores. *)
let magic = "HEXSNAP2"
let magic_v1 = "HEXSNAP1"

let repr_tag = function
  | Vectors.Sorted_ivec.Raw -> 0
  | Vectors.Sorted_ivec.Packed -> 1
  | Vectors.Sorted_ivec.Delta_varint -> 2

let repr_of_tag = function
  | 0 -> Vectors.Sorted_ivec.Raw
  | 1 -> Vectors.Sorted_ivec.Packed
  | 2 -> Vectors.Sorted_ivec.Delta_varint
  | b -> corrupt "unknown representation tag %d" b

(* --- FNV-1a 64-bit, over the payload bytes ---------------------------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_update h byte =
  Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xff))) fnv_prime

(* --- checksummed byte sinks/sources ----------------------------------- *)

type sink = {
  oc : out_channel;
  mutable out_hash : int64;
}

let write_byte sink b =
  output_char sink.oc (Char.chr (b land 0xff));
  sink.out_hash <- fnv_update sink.out_hash b

let write_string sink s =
  String.iter (fun c -> write_byte sink (Char.code c)) s

let write_varint sink n =
  if n < 0 then invalid_arg "Snapshot.write_varint: negative";
  let rec go n =
    if n < 0x80 then write_byte sink n
    else begin
      write_byte sink (0x80 lor (n land 0x7f));
      go (n lsr 7)
    end
  in
  go n

type source = {
  ic : in_channel;
  mutable in_hash : int64;
}

let read_byte src =
  match input_char src.ic with
  | c ->
      src.in_hash <- fnv_update src.in_hash (Char.code c);
      Char.code c
  | exception End_of_file -> corrupt "truncated snapshot"

(* A corrupt length field must fail as [Corrupt], not as an attempted
   multi-gigabyte allocation: no declared size can exceed the bytes that
   are actually left in the channel. *)
let remaining src = in_channel_length src.ic - pos_in src.ic

let check_size src n what =
  if n < 0 || n > remaining src then corrupt "declared %s exceeds snapshot size" what

let read_string src n =
  check_size src n "string length";
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.chr (read_byte src))
  done;
  Bytes.unsafe_to_string b

let read_varint src =
  let rec go shift acc =
    if shift > 62 then corrupt "varint overflow";
    let b = read_byte src in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

(* --- save -------------------------------------------------------------- *)

let save_channel h oc =
  let sink = { oc; out_hash = fnv_offset } in
  output_string oc magic;
  write_byte sink (repr_tag (Hexastore.repr h));
  let dict = Hexastore.dict h in
  let n_terms = Dict.Term_dict.size dict in
  write_varint sink n_terms;
  for id = 0 to n_terms - 1 do
    let spelling = Rdf.Term.to_string (Dict.Term_dict.decode_term dict id) in
    write_varint sink (String.length spelling);
    write_string sink spelling
  done;
  write_varint sink (Hexastore.size h);
  (* The full scan streams in (s, p, o) order — exactly the delta-friendly
     order. *)
  let prev = ref { Dict.Term_dict.s = 0; p = 0; o = 0 } in
  let first = ref true in
  Hexastore.lookup h Pattern.wildcard
  |> Seq.iter (fun (tr : Dict.Term_dict.id_triple) ->
         let ds = if !first then tr.s else tr.s - !prev.s in
         let p_base = if ds > 0 || !first then 0 else !prev.p in
         let dp = tr.p - p_base in
         let o_base = if ds > 0 || dp > 0 || !first then 0 else !prev.o in
         let dob = tr.o - o_base in
         write_varint sink ds;
         write_varint sink dp;
         write_varint sink dob;
         prev := tr;
         first := false);
  (* Trailer: the hash of everything after the magic, big-endian. *)
  let hash = sink.out_hash in
  for i = 7 downto 0 do
    output_char oc (Char.chr (Int64.to_int (Int64.shift_right_logical hash (8 * i)) land 0xff))
  done

let save h path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     save_channel h oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     Sys.remove tmp;
     raise e);
  Sys.rename tmp path;
  Telemetry.Events.emit (Telemetry.Events.Snapshot_save { path; triples = Hexastore.size h })

(* --- load -------------------------------------------------------------- *)

let load_channel ic =
  let got = try really_input_string ic (String.length magic) with End_of_file -> "" in
  if got <> magic && got <> magic_v1 then corrupt "bad magic (not a Hexastore snapshot)";
  let src = { ic; in_hash = fnv_offset } in
  (* Format 1 predates representation tags: such blobs are raw. *)
  let repr = if got = magic then repr_of_tag (read_byte src) else Vectors.Sorted_ivec.Raw in
  let dict = Dict.Term_dict.create () in
  let n_terms = read_varint src in
  (* Each term costs at least 2 bytes (length varint + 1 char). *)
  check_size src (n_terms * 2) "term count";
  for expected_id = 0 to n_terms - 1 do
    let len = read_varint src in
    let spelling = read_string src len in
    let term =
      try Rdf.Ntriples.parse_term spelling
      with Rdf.Ntriples.Parse_error (_, msg) -> corrupt "bad term %d: %s" expected_id msg
    in
    let id = Dict.Term_dict.encode_term dict term in
    if id <> expected_id then corrupt "duplicate term spelling at id %d" expected_id
  done;
  let n_triples = read_varint src in
  (* Each triple costs at least 3 varint bytes. *)
  check_size src (n_triples * 3) "triple count";
  let triples =
    if n_triples = 0 then [||]
    else Array.make n_triples { Dict.Term_dict.s = 0; p = 0; o = 0 }
  in
  let prev = ref { Dict.Term_dict.s = 0; p = 0; o = 0 } in
  for i = 0 to n_triples - 1 do
    let ds = read_varint src in
    let dp = read_varint src in
    let dob = read_varint src in
    let s = if i = 0 then ds else !prev.s + ds in
    let p_base = if ds > 0 || i = 0 then 0 else !prev.p in
    let p = p_base + dp in
    let o_base = if ds > 0 || dp > 0 || i = 0 then 0 else !prev.o in
    let o = o_base + dob in
    if s >= n_terms || p >= n_terms || o >= n_terms then
      corrupt "triple %d references unknown id" i;
    let tr = { Dict.Term_dict.s; p; o } in
    triples.(i) <- tr;
    prev := tr
  done;
  let payload_hash = src.in_hash in
  let stored =
    try really_input_string ic 8 with End_of_file -> corrupt "missing checksum"
  in
  let stored_hash =
    String.fold_left (fun acc c -> Int64.logor (Int64.shift_left acc 8) (Int64.of_int (Char.code c))) 0L stored
  in
  if stored_hash <> payload_hash then corrupt "checksum mismatch";
  (match input_char ic with
  | _ -> corrupt "trailing bytes after checksum"
  | exception End_of_file -> ());
  let h = Hexastore.create ~dict ~repr () in
  let added = Hexastore.add_bulk_ids h triples in
  if added <> n_triples then corrupt "duplicate triples in snapshot";
  h

let load path =
  let ic = open_in_bin path in
  let h = Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> load_channel ic) in
  Telemetry.Events.emit (Telemetry.Events.Snapshot_load { path; triples = Hexastore.size h });
  h

(* Delta-fronted stores persist flush-on-save: the snapshot format only
   knows the six-ordering base image, so pending buffers are drained
   into it first.  Saving is therefore canonicalising — re-saving the
   loaded store produces byte-identical output. *)

let save_delta d path =
  Delta.flush d;
  save (Delta.base d) path

let load_delta ?insert_threshold ?delete_threshold path =
  Delta.of_base ?insert_threshold ?delete_threshold (load path)
