open Vectors

type t = {
  keys : Dynarray_int.t;
  mutable payloads : Sorted_ivec.t array;  (* parallel to keys; slack beyond length *)
  mutable total_count : int;
}

let dummy = Sorted_ivec.create ~capacity:1 ()

let create ?(capacity = 4) () =
  {
    keys = Dynarray_int.create ~capacity ();
    payloads = Array.make (max capacity 1) dummy;
    total_count = 0;
  }

let length v = Dynarray_int.length v.keys
let total v = v.total_count
let bump_total v d = v.total_count <- v.total_count + d

let index_geq v x =
  let lo = ref 0 and hi = ref (length v) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Dynarray_int.unsafe_get v.keys mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

let find v key =
  let i = index_geq v key in
  if i < length v && Dynarray_int.unsafe_get v.keys i = key then Some v.payloads.(i) else None

(* Galloping lower bound over the keys, resuming at [from] — the same
   exponential bracket-then-bisect as {!Vectors.Sorted_ivec.search_from},
   so a merge-scan's repeated seeks pay for distance covered, not log n
   each. *)
let search_from v ~from x =
  let n = length v in
  let from = if from < 0 then 0 else from in
  if from >= n then n
  else if Dynarray_int.unsafe_get v.keys from >= x then from
  else begin
    let step = ref 1 in
    let lo = ref from in
    while !lo + !step < n && Dynarray_int.unsafe_get v.keys (!lo + !step) < x do
      lo := !lo + !step;
      step := !step * 2
    done;
    let hi = ref (min n (!lo + !step + 1)) in
    incr lo;
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Dynarray_int.unsafe_get v.keys mid < x then lo := mid + 1 else hi := mid
    done;
    !lo
  end

let ensure_payload_capacity v n =
  if n > Array.length v.payloads then begin
    let bigger = Array.make (max n (2 * Array.length v.payloads)) dummy in
    Array.blit v.payloads 0 bigger 0 (Array.length v.payloads);
    v.payloads <- bigger
  end

let get_or_insert v key mk =
  let n = length v in
  if n = 0 || key > Dynarray_int.last v.keys then begin
    (* Fast path: ascending arrival, plain append. *)
    let payload = mk () in
    Dynarray_int.push v.keys key;
    ensure_payload_capacity v (n + 1);
    v.payloads.(n) <- payload;
    payload
  end
  else
    let i = index_geq v key in
    if i < n && Dynarray_int.unsafe_get v.keys i = key then v.payloads.(i)
    else begin
      let payload = mk () in
      Dynarray_int.insert v.keys i key;
      ensure_payload_capacity v (n + 1);
      Array.blit v.payloads i v.payloads (i + 1) (n - i);
      v.payloads.(i) <- payload;
      payload
    end

let remove v key =
  let i = index_geq v key in
  if i < length v && Dynarray_int.unsafe_get v.keys i = key then begin
    let n = length v in
    Dynarray_int.remove v.keys i;
    Array.blit v.payloads (i + 1) v.payloads i (n - i - 1);
    v.payloads.(n - 1) <- dummy;
    true
  end
  else false

let key_at v i = Dynarray_int.get v.keys i

let payload_at v i =
  if i < 0 || i >= length v then invalid_arg "Pair_vector.payload_at";
  v.payloads.(i)

let keys v = Sorted_ivec.of_sorted_array (Dynarray_int.to_array v.keys)

let iter f v =
  for i = 0 to length v - 1 do
    f (Dynarray_int.unsafe_get v.keys i) v.payloads.(i)
  done

let to_seq v =
  let rec aux i () =
    if i >= length v then Seq.Nil
    else Seq.Cons ((Dynarray_int.unsafe_get v.keys i, v.payloads.(i)), aux (i + 1))
  in
  aux 0

let memory_words v = Dynarray_int.memory_words v.keys + Array.length v.payloads + 3

let check_invariant v =
  for i = 1 to length v - 1 do
    assert (Dynarray_int.unsafe_get v.keys (i - 1) < Dynarray_int.unsafe_get v.keys i)
  done;
  let sum = ref 0 in
  iter (fun _ l -> sum := !sum + Sorted_ivec.length l) v;
  assert (!sum = v.total_count)
