open Vectors

(* The mutable build form [Pv] is the historical keys-plus-payload-array
   layout.  [View] is the flat compressed index's window onto its key
   stream: a zero-copy sorted key slice, the precomputed triple total,
   and a function materialising the j-th terminal-list slice on demand.
   Views are transient (constructed per lookup, never stored), so they
   carry no mutation support. *)
type t =
  | Pv of {
      keys : Dynarray_int.t;
      mutable payloads : Sorted_ivec.t array; (* parallel to keys; slack beyond length *)
      mutable total_count : int;
    }
  | View of {
      vkeys : Sorted_ivec.t;
      vtotal : int;
      vpay : int -> Sorted_ivec.t;
    }

let dummy = Sorted_ivec.create ~capacity:1 ()

let create ?(capacity = 4) () =
  Pv
    {
      keys = Dynarray_int.create ~capacity ();
      payloads = Array.make (max capacity 1) dummy;
      total_count = 0;
    }

let view ~keys ~total ~payload = View { vkeys = keys; vtotal = total; vpay = payload }

let frozen op = invalid_arg ("Pair_vector." ^ op ^ ": compressed view is immutable")

let length = function Pv v -> Dynarray_int.length v.keys | View v -> Sorted_ivec.length v.vkeys

let total = function Pv v -> v.total_count | View v -> v.vtotal

let bump_total v d =
  match v with Pv v -> v.total_count <- v.total_count + d | View _ -> frozen "bump_total"

let unsafe_key v i =
  match v with
  | Pv v -> Dynarray_int.unsafe_get v.keys i
  | View v -> Sorted_ivec.get v.vkeys i

let index_geq v x =
  match v with
  | View w -> Sorted_ivec.index_geq w.vkeys x
  | Pv _ ->
      let lo = ref 0 and hi = ref (length v) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if unsafe_key v mid < x then lo := mid + 1 else hi := mid
      done;
      !lo

let payload v i = match v with Pv v -> v.payloads.(i) | View v -> v.vpay i

let find v key =
  let i = index_geq v key in
  if i < length v && unsafe_key v i = key then Some (payload v i) else None

(* Galloping lower bound over the keys, resuming at [from] — the same
   exponential bracket-then-bisect as {!Vectors.Sorted_ivec.search_from},
   so a merge-scan's repeated seeks pay for distance covered, not log n
   each. *)
let search_from v ~from x =
  match v with
  | View w -> Sorted_ivec.search_from w.vkeys ~from x
  | Pv _ ->
      let n = length v in
      let from = if from < 0 then 0 else from in
      if from >= n then n
      else if unsafe_key v from >= x then from
      else begin
        let step = ref 1 in
        let lo = ref from in
        while !lo + !step < n && unsafe_key v (!lo + !step) < x do
          lo := !lo + !step;
          step := !step * 2
        done;
        let hi = ref (min n (!lo + !step + 1)) in
        incr lo;
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if unsafe_key v mid < x then lo := mid + 1 else hi := mid
        done;
        !lo
      end

let get_or_insert v key mk =
  match v with
  | View _ -> frozen "get_or_insert"
  | Pv r ->
      let n = Dynarray_int.length r.keys in
      let ensure m =
        if m > Array.length r.payloads then begin
          let bigger = Array.make (max m (2 * Array.length r.payloads)) dummy in
          Array.blit r.payloads 0 bigger 0 (Array.length r.payloads);
          r.payloads <- bigger
        end
      in
      if n = 0 || key > Dynarray_int.last r.keys then begin
        (* Fast path: ascending arrival, plain append. *)
        let payload = mk () in
        Dynarray_int.push r.keys key;
        ensure (n + 1);
        r.payloads.(n) <- payload;
        payload
      end
      else
        let i = index_geq v key in
        if i < n && Dynarray_int.unsafe_get r.keys i = key then r.payloads.(i)
        else begin
          let payload = mk () in
          Dynarray_int.insert r.keys i key;
          ensure (n + 1);
          Array.blit r.payloads i r.payloads (i + 1) (n - i);
          r.payloads.(i) <- payload;
          payload
        end

let remove v key =
  match v with
  | View _ -> frozen "remove"
  | Pv r ->
      let i = index_geq v key in
      if i < Dynarray_int.length r.keys && Dynarray_int.unsafe_get r.keys i = key then begin
        let n = Dynarray_int.length r.keys in
        Dynarray_int.remove r.keys i;
        Array.blit r.payloads (i + 1) r.payloads i (n - i - 1);
        r.payloads.(n - 1) <- dummy;
        true
      end
      else false

let key_at v i =
  match v with Pv r -> Dynarray_int.get r.keys i | View w -> Sorted_ivec.get w.vkeys i

let payload_at v i =
  if i < 0 || i >= length v then invalid_arg "Pair_vector.payload_at";
  payload v i

let keys = function
  | Pv r -> Sorted_ivec.of_sorted_array (Dynarray_int.to_array r.keys)
  | View w -> Sorted_ivec.copy w.vkeys

let iter f v =
  for i = 0 to length v - 1 do
    f (unsafe_key v i) (payload v i)
  done

let to_seq v =
  let rec aux i () =
    if i >= length v then Seq.Nil else Seq.Cons ((unsafe_key v i, payload v i), aux (i + 1))
  in
  aux 0

let memory_words = function
  | Pv r -> Dynarray_int.memory_words r.keys + Array.length r.payloads + 3
  | View _ -> 8 (* transient: variant block + slice + closure; never aggregated *)

let check_invariant v =
  for i = 1 to length v - 1 do
    assert (unsafe_key v (i - 1) < unsafe_key v i)
  done;
  let sum = ref 0 in
  iter (fun _ l -> sum := !sum + Sorted_ivec.length l) v;
  assert (!sum = total v)
