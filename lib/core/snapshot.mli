(** Binary snapshots of a Hexastore.

    The paper's future work (§7) plans "a fully operational disk-based
    Hexastore"; this module is the persistence half of that: a compact
    binary image of the store — the dictionary plus the triple set,
    delta-varint encoded in (s, p, o) order — from which loading rebuilds
    all six indices through the bulk path (the sorted stream makes every
    insertion a monotone append).

    Format (version 1):
    {v
magic   "HEXSNAP1"
dict    varint count, then per id: varint length + N-Triples spelling
triples varint count, then per triple (sorted s,p,o):
        varint Δs, varint Δp (absolute when Δs>0), varint Δo
        (absolute when Δs>0 or Δp>0)
crc     FNV-1a 64-bit of everything after the magic
    v}

    Ids are positional: the dictionary section re-encodes terms in id
    order, so a loaded store assigns identical ids. *)

exception Corrupt of string
(** Bad magic, truncation, checksum mismatch, or undecodable content. *)

val save : Hexastore.t -> string -> unit
(** Write the store to a file (atomically: a temp file is renamed into
    place). *)

val load : string -> Hexastore.t
(** Rebuild a store from a snapshot.
    @raise Corrupt on any malformed input.
    @raise Sys_error when the file cannot be read. *)

val save_channel : Hexastore.t -> out_channel -> unit

val load_channel : in_channel -> Hexastore.t

val save_delta : Delta.t -> string -> unit
(** Flush-on-save: drains the delta's pending buffers into its base,
    then writes the base image.  A loaded-then-re-saved snapshot is
    byte-identical. *)

val load_delta : ?insert_threshold:int -> ?delete_threshold:int -> string -> Delta.t
(** {!load} the base image and front it with an empty delta. *)
