open Vectors

type role =
  | Rs
  | Rp
  | Ro

let roles = function
  | Ordering.Spo -> (Rs, Rp, Ro)
  | Ordering.Sop -> (Rs, Ro, Rp)
  | Ordering.Pso -> (Rp, Rs, Ro)
  | Ordering.Pos -> (Rp, Ro, Rs)
  | Ordering.Osp -> (Ro, Rs, Rp)
  | Ordering.Ops -> (Ro, Rp, Rs)

(* Terminal-list family of an ordering: which element its lists hold. *)
type family =
  | F_o   (* o-lists keyed (s,p): spo, pso *)
  | F_p   (* p-lists keyed (s,o): sop, osp *)
  | F_s   (* s-lists keyed (p,o): pos, ops *)

let family_of = function
  | Ordering.Spo | Ordering.Pso -> F_o
  | Ordering.Sop | Ordering.Osp -> F_p
  | Ordering.Pos | Ordering.Ops -> F_s

let family_key (tr : Dict.Term_dict.id_triple) = function
  | F_o -> Pair_key.make tr.s tr.p
  | F_p -> Pair_key.make tr.s tr.o
  | F_s -> Pair_key.make tr.p tr.o

let family_third (tr : Dict.Term_dict.id_triple) = function
  | F_o -> tr.o
  | F_p -> tr.p
  | F_s -> tr.s

type t = {
  dict : Dict.Term_dict.t;
  kept : Ordering.Set.t;
  indices : (Ordering.t * Index.t) list;
  families : (family * (int, Sorted_ivec.t) Hashtbl.t) list;
  mutable size : int;
}

let create ?dict ~orderings () =
  if orderings = [] then invalid_arg "Partial.create: at least one ordering required";
  let dict = match dict with Some d -> d | None -> Dict.Term_dict.create () in
  let kept = Ordering.Set.of_list orderings in
  let indices =
    List.map (fun ord -> (ord, Index.create ())) (Ordering.Set.elements kept)
  in
  let families =
    List.sort_uniq compare (List.map family_of (Ordering.Set.elements kept))
    |> List.map (fun f -> (f, Hashtbl.create 1024))
  in
  { dict; kept; indices; families; size = 0 }

let orderings t = t.kept
let dict t = t.dict
let size t = t.size

let get_role (tr : Dict.Term_dict.id_triple) = function
  | Rs -> tr.s
  | Rp -> tr.p
  | Ro -> tr.o

let assemble (r1, r2, r3) x1 x2 x3 : Dict.Term_dict.id_triple =
  let s = ref 0 and p = ref 0 and o = ref 0 in
  let set r x = match r with Rs -> s := x | Rp -> p := x | Ro -> o := x in
  set r1 x1;
  set r2 x2;
  set r3 x3;
  { s = !s; p = !p; o = !o }

let get_or_create_list table key =
  match Hashtbl.find_opt table key with
  | Some l -> l
  | None ->
      let l = Sorted_ivec.create ~capacity:2 () in
      Hashtbl.add table key l;
      l

let link index ~first ~second l =
  let v = Index.get_or_create_vector index first in
  ignore (Pair_vector.get_or_insert v second (fun () -> l));
  Pair_vector.bump_total v 1

(* Duplicate detection goes through the first materialised family: every
   family's lists characterise the triple set completely. *)
let primary t = List.hd t.families

let mem_ids t tr =
  let f, table = primary t in
  match Hashtbl.find_opt table (family_key tr f) with
  | None -> false
  | Some l -> Sorted_ivec.mem l (family_third tr f)

let link_ordering t lists tr ord =
  let f = family_of ord in
  let l = List.assq f lists in
  let r1, r2, _ = roles ord in
  let idx = List.assoc ord t.indices in
  link idx ~first:(get_role tr r1) ~second:(get_role tr r2) l

let add_ids t tr =
  (* Insert into every materialised family; the primary add doubles as
     the duplicate check. *)
  let pf, ptable = primary t in
  let plist = get_or_create_list ptable (family_key tr pf) in
  if not (Sorted_ivec.add plist (family_third tr pf)) then false
  else begin
    let lists =
      List.map
        (fun (f, table) ->
          if f = pf then (f, plist)
          else begin
            let l = get_or_create_list table (family_key tr f) in
            ignore (Sorted_ivec.add l (family_third tr f));
            (f, l)
          end)
        t.families
    in
    List.iter (fun (ord, _) -> link_ordering t lists tr ord) t.indices;
    t.size <- t.size + 1;
    true
  end

let cmp_for_family f (a : Dict.Term_dict.id_triple) (b : Dict.Term_dict.id_triple) =
  let key = function
    | F_o -> fun (x : Dict.Term_dict.id_triple) -> (x.s, x.p, x.o)
    | F_p -> fun x -> (x.s, x.o, x.p)
    | F_s -> fun x -> (x.p, x.o, x.s)
  in
  compare (key f a) (key f b)

let add_bulk_ids t triples =
  (* One sorted pass per materialised family (monotone appends), plus the
     orderings of that family; the primary pass also deduplicates. *)
  let pf, _ = primary t in
  let arr = Array.copy triples in
  Array.sort (cmp_for_family pf) arr;
  let fresh = ref [] in
  let fresh_count = ref 0 in
  let pass f table fresh_arr =
    Array.sort (cmp_for_family f) fresh_arr;
    Array.iter
      (fun tr ->
        let l = get_or_create_list table (family_key tr f) in
        ignore (Sorted_ivec.add l (family_third tr f));
        List.iter
          (fun (ord, _) -> if family_of ord = f then link_ordering t [ (f, l) ] tr ord)
          t.indices)
      fresh_arr
  in
  (* Primary pass with dedup. *)
  let _, ptable = primary t in
  Array.iter
    (fun tr ->
      let l = get_or_create_list ptable (family_key tr pf) in
      if Sorted_ivec.add l (family_third tr pf) then begin
        List.iter
          (fun (ord, _) -> if family_of ord = pf then link_ordering t [ (pf, l) ] tr ord)
          t.indices;
        fresh := tr :: !fresh;
        incr fresh_count
      end)
    arr;
  let fresh = Array.of_list !fresh in
  List.iter (fun (f, table) -> if f <> pf then pass f table fresh) t.families;
  t.size <- t.size + !fresh_count;
  !fresh_count

(* --- lookup ------------------------------------------------------------ *)

let pattern_role (pat : Pattern.t) = function
  | Rs -> pat.s
  | Rp -> pat.p
  | Ro -> pat.o

(* How useful an ordering is for a pattern: length of its bound prefix,
   with a tie-break bonus for the shape's native ordering. *)
let score pat ord =
  let r1, r2, r3 = roles ord in
  let bound r = pattern_role pat r <> None in
  let prefix =
    if not (bound r1) then 0
    else if not (bound r2) then 1
    else if not (bound r3) then 2
    else 3
  in
  (2 * prefix) + if Ordering.equal ord (Ordering.for_shape (Pattern.shape pat)) then 1 else 0

let best_ordering t pat =
  List.fold_left
    (fun best (ord, idx) ->
      match best with
      | Some (bord, _) when score pat bord >= score pat ord -> best
      | _ -> Some (ord, idx))
    None t.indices
  |> Option.get

let is_native t shape =
  Ordering.Set.mem (Ordering.for_shape shape) t.kept
  ||
  (* Membership and Sp also count as native through the twin (shared
     family lists answer them identically). *)
  match shape with
  | Pattern.All | Pattern.Sp -> Ordering.Set.mem (Ordering.twin (Ordering.for_shape shape)) t.kept
  | _ -> false

let lookup t (pat : Pattern.t) : Dict.Term_dict.id_triple Seq.t =
  let ord, idx = best_ordering t pat in
  let ((r1, r2, r3) as rs) = roles ord in
  let v1 = pattern_role pat r1 and v2 = pattern_role pat r2 and v3 = pattern_role pat r3 in
  let expand_entry x1 x2 l =
    match v3 with
    | Some x3 ->
        if Sorted_ivec.mem l x3 then Seq.return (assemble rs x1 x2 x3) else Seq.empty
    | None -> Seq.map (fun x3 -> assemble rs x1 x2 x3) (Sorted_ivec.to_seq l)
  in
  let expand_vector x1 v =
    match v2 with
    | Some x2 -> (
        match Pair_vector.find v x2 with None -> Seq.empty | Some l -> expand_entry x1 x2 l)
    | None -> Seq.concat_map (fun (x2, l) -> expand_entry x1 x2 l) (Pair_vector.to_seq v)
  in
  match v1 with
  | Some x1 -> (
      match Index.find_vector idx x1 with None -> Seq.empty | Some v -> expand_vector x1 v)
  | None ->
      (* No bound position leads any kept ordering: filtered full scan. *)
      Seq.concat_map
        (fun x1 ->
          match Index.find_vector idx x1 with
          | None -> Seq.empty
          | Some v -> expand_vector x1 v)
        (Sorted_ivec.to_seq (Index.headers idx))

let count t pat =
  (* Exact shortcuts when the leading two positions are bound in a kept
     ordering; otherwise count the stream. *)
  let ord, idx = best_ordering t pat in
  let r1, r2, r3 = roles ord in
  let v1 = pattern_role pat r1 and v2 = pattern_role pat r2 and v3 = pattern_role pat r3 in
  match (v1, v2, v3) with
  | Some x1, Some x2, None -> (
      match Index.find_list idx x1 x2 with None -> 0 | Some l -> Sorted_ivec.length l)
  | Some x1, None, None -> (
      match Index.find_vector idx x1 with None -> 0 | Some v -> Pair_vector.total v)
  | None, None, None -> t.size
  | _ -> Seq.length (lookup t pat)

let memory_words t =
  (* Exact, matching [Hexastore.memory_words]: the bucket array plus a
     4-word bucket entry (Cons header, key, data, next) per list. *)
  let lists_memory table =
    let stats = Hashtbl.stats table in
    Hashtbl.fold
      (fun _ l acc -> acc + 4 + Sorted_ivec.memory_words l)
      table
      (stats.Hashtbl.num_buckets + 4)
  in
  List.fold_left (fun acc (_, idx) -> acc + Index.memory_words idx) 0 t.indices
  + List.fold_left (fun acc (_, table) -> acc + lists_memory table) 0 t.families

let check_invariant t =
  List.iter
    (fun (_, idx) ->
      Index.check_invariant idx;
      assert (Index.total idx = t.size))
    t.indices
