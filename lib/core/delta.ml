open Vectors

type id_triple = Dict.Term_dict.id_triple = {
  s : int;
  p : int;
  o : int;
}

(* Telemetry: buffered-mutation counters, pending-size gauges, and a
   flush cost profile.  Every hook is one flag read while telemetry is
   off. *)
let m_ins_buf = Telemetry.Metrics.counter "hexastore.delta.insert.buffered"
let m_del_buf = Telemetry.Metrics.counter "hexastore.delta.delete.buffered"
let m_resurrect = Telemetry.Metrics.counter "hexastore.delta.insert.resurrected"
let m_unbuffer = Telemetry.Metrics.counter "hexastore.delta.delete.unbuffered"
let m_flush = Telemetry.Metrics.counter "hexastore.delta.flush.calls"
let m_flush_auto = Telemetry.Metrics.counter "hexastore.delta.flush.auto"
let m_flush_rebuild = Telemetry.Metrics.counter "hexastore.delta.flush.rebuild"
let m_compact = Telemetry.Metrics.counter "hexastore.delta.compact.calls"
let m_merged = Telemetry.Metrics.counter "hexastore.delta.lookup.merged"
let g_pending_ins = Telemetry.Metrics.gauge "hexastore.delta.pending_inserts"
let g_pending_del = Telemetry.Metrics.gauge "hexastore.delta.pending_deletes"
let m_flush_us = Telemetry.Metrics.histogram "hexastore.delta.flush_duration_us"
let m_flush_batch = Telemetry.Metrics.histogram "hexastore.delta.flush_batch"

(* Concurrency protocol (see DESIGN.md §13): one writer stages into the
   buffers and flushes; readers on other domains never touch the live
   buffers — they [pin] a snapshot (frozen base + private buffer copies)
   and release it when done.  [sync] backs that handshake: buffer
   mutation and the pin's copy both hold [lock], and a flush (which
   mutates the shared base the snapshots still read) waits under [cond]
   until every pin is released, while new pins wait out an in-progress
   flush. *)
type sync = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable pins : int;
  mutable flushing : bool;
}

let make_sync () =
  { lock = Mutex.create (); cond = Condition.create (); pins = 0; flushing = false }

(* Invariants (checked by [Check.Invariant.delta]):
   - no triple is in both [inserts] and the base store;
   - [deletes] is a subset of the base store;
   - [inserts] and [deletes] are disjoint (implied by the two above). *)
type t = {
  base : Hexastore.t;
  inserts : (id_triple, unit) Hashtbl.t;
  deletes : (id_triple, unit) Hashtbl.t;
  mutable insert_threshold : int;
  mutable delete_threshold : int;
  sync : sync;
}

let default_insert_threshold = 4096
let default_delete_threshold = 1024

let clamp_threshold n = max 1 n

let of_base ?(insert_threshold = default_insert_threshold)
    ?(delete_threshold = default_delete_threshold) base =
  {
    base;
    inserts = Hashtbl.create 64;
    deletes = Hashtbl.create 16;
    insert_threshold = clamp_threshold insert_threshold;
    delete_threshold = clamp_threshold delete_threshold;
    sync = make_sync ();
  }

let with_lock t f =
  Mutex.lock t.sync.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sync.lock) f

(* Run [f] with the base frozen for everyone else: blocks new pins,
   waits out existing ones, then lets [f] mutate the shared base. *)
let with_base_frozen t f =
  with_lock t (fun () ->
      while t.sync.flushing do
        Condition.wait t.sync.cond t.sync.lock
      done;
      t.sync.flushing <- true;
      while t.sync.pins > 0 do
        Condition.wait t.sync.cond t.sync.lock
      done;
      Fun.protect
        ~finally:(fun () ->
          t.sync.flushing <- false;
          Condition.broadcast t.sync.cond)
        f)

let create ?dict ?insert_threshold ?delete_threshold () =
  of_base ?insert_threshold ?delete_threshold (Hexastore.create ?dict ())

let base t = t.base
let dict t = Hexastore.dict t.base
let pending_inserts t = Hashtbl.length t.inserts
let pending_deletes t = Hashtbl.length t.deletes
let insert_threshold t = t.insert_threshold
let delete_threshold t = t.delete_threshold

let set_thresholds ?insert ?delete t =
  (match insert with Some n -> t.insert_threshold <- clamp_threshold n | None -> ());
  match delete with Some n -> t.delete_threshold <- clamp_threshold n | None -> ()

let size t = Hexastore.size t.base + Hashtbl.length t.inserts - Hashtbl.length t.deletes

let note_pending t =
  if !Telemetry.Config.enabled then begin
    Telemetry.Metrics.set g_pending_ins (float_of_int (Hashtbl.length t.inserts));
    Telemetry.Metrics.set g_pending_del (float_of_int (Hashtbl.length t.deletes))
  end

(* --- flush ------------------------------------------------------------ *)

(* A batch this large relative to the (post-delete) base triggers a full
   rebuild: the whole merged set is re-loaded into a fresh store through
   [add_bulk_ids]'s pure-append path, O((N + k) log (N + k)), instead of
   k in-place binary insertions each moving O(vector) elements. *)
let rebuild_factor = 8

let drain_pending t =
  let deletes = Hashtbl.fold (fun tr () acc -> tr :: acc) t.deletes [] in
  List.iter (fun tr -> ignore (Hexastore.remove_ids t.base tr)) deletes;
  Hashtbl.reset t.deletes;
  let batch = Array.make (Hashtbl.length t.inserts) { s = 0; p = 0; o = 0 } in
  let i = ref 0 in
  Hashtbl.iter
    (fun tr () ->
      batch.(!i) <- tr;
      incr i)
    t.inserts;
  Hashtbl.reset t.inserts;
  batch

let rebuild_base t batch =
  Telemetry.Metrics.incr m_flush_rebuild;
  let n = Hexastore.size t.base in
  let all = Array.make (n + Array.length batch) { s = 0; p = 0; o = 0 } in
  let i = ref 0 in
  ignore
    (Hexastore.fold
       (fun tr () ->
         all.(!i) <- tr;
         incr i)
       t.base ());
  Array.blit batch 0 all n (Array.length batch);
  let fresh = Hexastore.create ~dict:(Hexastore.dict t.base) ~repr:(Hexastore.repr t.base) () in
  ignore (Hexastore.add_bulk_ids fresh all);
  (* Adopt in place so aliases to the base (e.g. a dataset graph fronted
     by this delta) keep seeing the store's contents. *)
  Hexastore.replace_contents t.base ~from:fresh

let flush_with ?(auto = false) ~force_rebuild t =
  let timed = !Telemetry.Config.enabled in
  let started = if timed then Telemetry.Clock.now () else 0. in
  let pending, rebuild =
    with_base_frozen t (fun () ->
        let pending = Hashtbl.length t.inserts + Hashtbl.length t.deletes in
        Telemetry.Metrics.incr m_flush;
        Telemetry.Metrics.observe m_flush_batch pending;
        let batch = drain_pending t in
        let rebuild =
          force_rebuild || Array.length batch * rebuild_factor >= Hexastore.size t.base
        in
        if rebuild then rebuild_base t batch else ignore (Hexastore.add_bulk_ids t.base batch);
        (pending, rebuild))
  in
  Telemetry.Events.emit (Telemetry.Events.Delta_flush { pending; rebuild; auto });
  note_pending t;
  if timed then
    Telemetry.Metrics.observe m_flush_us
      (int_of_float ((Telemetry.Clock.now () -. started) *. 1e6))

let flush t =
  if Hashtbl.length t.inserts > 0 || Hashtbl.length t.deletes > 0 then
    flush_with ~force_rebuild:false t

let compact t =
  Telemetry.Metrics.incr m_compact;
  Telemetry.Events.emit
    (Telemetry.Events.Delta_compact
       { pending = Hashtbl.length t.inserts + Hashtbl.length t.deletes });
  flush_with ~force_rebuild:true t

let maybe_auto_flush t =
  if
    Hashtbl.length t.inserts >= t.insert_threshold
    || Hashtbl.length t.deletes >= t.delete_threshold
  then begin
    Telemetry.Metrics.incr m_flush_auto;
    flush_with ~auto:true ~force_rebuild:false t
  end

(* --- mutation --------------------------------------------------------- *)

(* Buffer staging holds [sync.lock] so a concurrent [pin]'s
   [Hashtbl.copy] never observes a half-resized table; the auto-flush
   check runs after the lock is released ([flush_with] re-enters the
   sync protocol itself). *)
let add_ids t tr =
  let outcome =
    with_lock t (fun () ->
        if Hashtbl.mem t.inserts tr then `Noop
        else if Hexastore.mem_ids t.base tr then
          if Hashtbl.mem t.deletes tr then begin
            (* Resurrection: cancel the pending tombstone instead of
               buffering an insert the base already holds. *)
            Hashtbl.remove t.deletes tr;
            Telemetry.Metrics.incr m_resurrect;
            `Staged
          end
          else `Noop
        else begin
          Hashtbl.replace t.inserts tr ();
          Telemetry.Metrics.incr m_ins_buf;
          `Buffered
        end)
  in
  (match outcome with
  | `Noop -> ()
  | `Staged -> note_pending t
  | `Buffered ->
      note_pending t;
      maybe_auto_flush t);
  outcome <> `Noop

let remove_ids t tr =
  let outcome =
    with_lock t (fun () ->
        if Hashtbl.mem t.inserts tr then begin
          (* The triple only ever lived in the buffer: dropping the
             buffered insert deletes it without touching the base. *)
          Hashtbl.remove t.inserts tr;
          Telemetry.Metrics.incr m_unbuffer;
          `Staged
        end
        else if Hexastore.mem_ids t.base tr && not (Hashtbl.mem t.deletes tr) then begin
          Hashtbl.replace t.deletes tr ();
          Telemetry.Metrics.incr m_del_buf;
          `Buffered
        end
        else `Noop)
  in
  (match outcome with
  | `Noop -> ()
  | `Staged -> note_pending t
  | `Buffered ->
      note_pending t;
      maybe_auto_flush t);
  outcome <> `Noop

let mem_ids t tr =
  Hashtbl.mem t.inserts tr
  || (Hexastore.mem_ids t.base tr && not (Hashtbl.mem t.deletes tr))

let add_bulk_ids t batch =
  (* Pending deletes must land first so a batch re-inserting a tombstoned
     triple counts it as fresh; then the base's own sort-and-append bulk
     path takes the whole batch at once (with the base frozen, since
     pinned snapshots read it directly). *)
  flush t;
  with_base_frozen t (fun () -> Hexastore.add_bulk_ids t.base batch)

(* --- merged lookup ---------------------------------------------------- *)

(* One comparator per index family; a pattern's matches agree on its
   bound positions, so comparing the full triple in the serving index's
   significance order ranks them exactly as the base scan emits them. *)
let cmp_spo (a : id_triple) (b : id_triple) =
  let c = Int.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Int.compare a.p b.p in
    if c <> 0 then c else Int.compare a.o b.o

let cmp_sop (a : id_triple) (b : id_triple) =
  let c = Int.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Int.compare a.o b.o in
    if c <> 0 then c else Int.compare a.p b.p

let cmp_pso (a : id_triple) (b : id_triple) =
  let c = Int.compare a.p b.p in
  if c <> 0 then c
  else
    let c = Int.compare a.s b.s in
    if c <> 0 then c else Int.compare a.o b.o

let cmp_pos (a : id_triple) (b : id_triple) =
  let c = Int.compare a.p b.p in
  if c <> 0 then c
  else
    let c = Int.compare a.o b.o in
    if c <> 0 then c else Int.compare a.s b.s

let cmp_osp (a : id_triple) (b : id_triple) =
  let c = Int.compare a.o b.o in
  if c <> 0 then c
  else
    let c = Int.compare a.s b.s in
    if c <> 0 then c else Int.compare a.p b.p

let cmp_ops (a : id_triple) (b : id_triple) =
  let c = Int.compare a.o b.o in
  if c <> 0 then c
  else
    let c = Int.compare a.p b.p in
    if c <> 0 then c else Int.compare a.s b.s

let cmp_for_shape = function
  | Pattern.All | Pattern.Sp | Pattern.S | Pattern.None_bound -> cmp_spo
  | Pattern.So -> cmp_sop
  | Pattern.P -> cmp_pso
  | Pattern.Po -> cmp_pos
  | Pattern.O -> cmp_osp

let cmp_for_ordering = function
  | Ordering.Spo -> cmp_spo
  | Ordering.Sop -> cmp_sop
  | Ordering.Pso -> cmp_pso
  | Ordering.Pos -> cmp_pos
  | Ordering.Osp -> cmp_osp
  | Ordering.Ops -> cmp_ops

(* Matching buffer entries, materialised and sorted at call time so the
   lazy merged sequence never reads a mutable hash table. *)
let pending_matching table cmp pat =
  let hits = Hashtbl.fold (fun tr () acc -> if Pattern.matches pat tr then tr :: acc else acc) table [] in
  let arr = Array.of_list hits in
  Array.sort cmp arr;
  Array.to_seq arr

let lookup t pat =
  if Hashtbl.length t.inserts = 0 && Hashtbl.length t.deletes = 0 then
    Hexastore.lookup t.base pat
  else begin
    Telemetry.Metrics.incr m_merged;
    let cmp = cmp_for_shape (Pattern.shape pat) in
    let base_seq = Hexastore.lookup t.base pat in
    let dels = pending_matching t.deletes cmp pat in
    let inss = pending_matching t.inserts cmp pat in
    Merge.union_seq_by ~cmp (Merge.diff_seq_by ~cmp base_seq dels) inss
  end

let count t pat =
  match Pattern.shape pat with
  | Pattern.All ->
      let tr = { s = Option.get pat.s; p = Option.get pat.p; o = Option.get pat.o } in
      if mem_ids t tr then 1 else 0
  | _ ->
      let pending table =
        Hashtbl.fold (fun tr () acc -> if Pattern.matches pat tr then acc + 1 else acc) table 0
      in
      Hexastore.count t.base pat + pending t.inserts - pending t.deletes

let fold f t acc = Seq.fold_left (fun acc tr -> f tr acc) acc (lookup t Pattern.wildcard)

(* Merged sorted scans: the base's seekable scan stays the backbone;
   buffered inserts are snapshot-sorted under the serving ordering's
   comparator and merged in, tombstones filtered out (an order-preserving
   filter, so the merged stream stays sorted on the scan position). *)
let scan_sorted t pat pos =
  match Hexastore.scan_sorted t.base pat pos with
  | None -> None
  | Some (ord, base_seek) ->
      if Hashtbl.length t.inserts = 0 && Hashtbl.length t.deletes = 0 then Some (ord, base_seek)
      else begin
        Telemetry.Metrics.incr m_merged;
        let cmp = cmp_for_ordering ord in
        let value_of (tr : id_triple) =
          match pos with Pattern.Subj -> tr.s | Pattern.Pred -> tr.p | Pattern.Obj -> tr.o
        in
        let ins =
          let hits =
            Hashtbl.fold
              (fun tr () acc -> if Pattern.matches pat tr then tr :: acc else acc)
              t.inserts []
          in
          let arr = Array.of_list hits in
          Array.sort cmp arr;
          arr
        in
        let n_ins = Array.length ins in
        (* Matches agree on the bound positions (a prefix of the serving
           ordering before [pos]), so [cmp] order is [pos]-value order:
           a binary search by scan value finds the merge suffix. *)
        let ins_from k =
          let lo = ref 0 and hi = ref n_ins in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if value_of ins.(mid) < k then lo := mid + 1 else hi := mid
          done;
          let rec aux i () = if i >= n_ins then Seq.Nil else Seq.Cons (ins.(i), aux (i + 1)) in
          aux !lo
        in
        let seek k =
          let base = Seq.filter (fun tr -> not (Hashtbl.mem t.deletes tr)) (base_seek k) in
          Merge.union_seq_by ~cmp base (ins_from k)
        in
        Some (ord, seek)
      end

(* Splitting reuses the base's boundary keys: buffered inserts merge
   into whichever range their scan value lands in, preserving both
   contiguity and per-range sortedness, so concatenating the split still
   reproduces the unsplit merged stream exactly.  (Insert-heavy deltas
   can unbalance the parts; that costs speedup, never correctness.) *)
let scan_bounds t pat pos ~parts = Hexastore.scan_bounds t.base pat pos ~parts

let scan_split t pat pos ~parts =
  match scan_sorted t pat pos with
  | None -> None
  | Some (ord, seek) ->
      Some (ord, Hexastore.split_cursor pos (scan_bounds t pat pos ~parts) seek)

(* --- snapshot pinning -------------------------------------------------- *)

let pin t =
  with_lock t (fun () ->
      while t.sync.flushing do
        Condition.wait t.sync.cond t.sync.lock
      done;
      t.sync.pins <- t.sync.pins + 1;
      let view =
        {
          base = t.base;
          inserts = Hashtbl.copy t.inserts;
          deletes = Hashtbl.copy t.deletes;
          (* A snapshot is read-only by protocol; max out the thresholds
             so even a misuse can never auto-flush into the shared base. *)
          insert_threshold = max_int;
          delete_threshold = max_int;
          sync = make_sync ();
        }
      in
      let released = ref false in
      let unpin () =
        with_lock t (fun () ->
            if not !released then begin
              released := true;
              t.sync.pins <- t.sync.pins - 1;
              if t.sync.pins = 0 then Condition.broadcast t.sync.cond
            end)
      in
      (view, unpin))

let pins t = t.sync.pins

let iter_pending_inserts f t = Hashtbl.iter (fun tr () -> f tr) t.inserts
let iter_pending_deletes f t = Hashtbl.iter (fun tr () -> f tr) t.deletes

(* --- term-level API --------------------------------------------------- *)

let add t triple = add_ids t (Dict.Term_dict.encode_triple (dict t) triple)

let remove t triple =
  match Dict.Term_dict.find_triple (dict t) triple with
  | None -> false
  | Some ids -> remove_ids t ids

let mem t triple =
  match Dict.Term_dict.find_triple (dict t) triple with
  | None -> false
  | Some ids -> mem_ids t ids

let find t ?s ?p ?o () =
  let d = dict t in
  let resolve = function
    | None -> Some None
    | Some term -> (
        match Dict.Term_dict.find_term d term with None -> None | Some id -> Some (Some id))
  in
  match (resolve s, resolve p, resolve o) with
  | Some s, Some p, Some o ->
      Seq.map (Dict.Term_dict.decode_triple d) (lookup t { Pattern.s; p; o })
  | _ -> Seq.empty

let to_triples t =
  List.of_seq (Seq.map (Dict.Term_dict.decode_triple (dict t)) (lookup t Pattern.wildcard))

(* --- accounting ------------------------------------------------------- *)

(* Each pending entry costs a boxed 4-word triple record plus ~4 words of
   hash-bucket overhead. *)
let memory_words t =
  Hexastore.memory_words t.base
  + (8 * (Hashtbl.length t.inserts + Hashtbl.length t.deletes))
  + 32
