open Hexa
module SV = Vectors.Sorted_ivec
module Merge = Vectors.Merge

type ids = {
  type_p : int;
  text : int;
  language : int;
  french : int;
  origin : int;
  dlc : int;
  records : int;
  point : int;
  end_point : int;
  encoding : int;
}

let resolve_ids dict =
  let find term = Dict.Term_dict.find_term dict term in
  let iri s = find (Rdf.Term.iri s) in
  match
    ( iri Barton.type_p, iri Barton.text_type, iri Barton.language_p,
      find (Rdf.Term.string_literal Barton.french), iri Barton.origin_p, iri Barton.dlc,
      iri Barton.records_p, iri Barton.point_p, find (Rdf.Term.string_literal "end"),
      iri Barton.encoding_p )
  with
  | ( Some type_p, Some text, Some language, Some french, Some origin, Some dlc,
      Some records, Some point, Some end_point, Some encoding ) ->
      Some { type_p; text; language; french; origin; dlc; records; point; end_point; encoding }
  | _ -> None

let restriction_28 dict =
  List.filter_map
    (fun iri -> Dict.Term_dict.find_term dict (Rdf.Term.iri iri))
    Barton.properties_28

let empty_sv = SV.create ~capacity:1 ()

(* --- shared access helpers -------------------------------------------- *)

(* Sorted subjects matching (p, o).  COVP1's implementation of
   [subjects_of_po] scans the property table, which is exactly the cost
   §5.2 prescribes for it. *)
let subjects_po store ~p ~o =
  match store with
  | Stores.Hexa h -> (
      match Hexastore.subjects_of_po h ~p ~o with Some l -> l | None -> empty_sv)
  | Stores.Covp c -> (
      match Covp.subjects_of_po c ~p ~o with Some l -> l | None -> empty_sv)

(* The property set a COVP property-unbound step iterates: the full table
   list, or the pre-selected restriction. *)
let covp_scan_props c restrict =
  match restrict with Some l -> l | None -> Covp.properties c

(* Restrictions are normalised to sorted vectors once per query so the
   per-property phases can iterate them directly in sorted order. *)
let restrict_sv restrict = Option.map SV.of_list restrict

(* Iterate a property's subject-sorted table restricted to subjects in
   [t], merge-join style (both sides sorted): a double-galloping merge
   in which whichever side is behind seeks forward with a resumable
   exponential search.  Degenerates to a linear merge when the sides
   interleave densely and to O(min log max) when one side is sparse, so
   it replaces the old fixed density-ratio heuristic. *)
let iter_table_join v t f =
  let nv = Pair_vector.length v and nt = SV.length t in
  let rec loop i j =
    if i < nv && j < nt then begin
      let s = Pair_vector.key_at v i and x = SV.get t j in
      if s = x then begin
        f s (Pair_vector.payload_at v i);
        loop (i + 1) (j + 1)
      end
      else if s < x then loop (Pair_vector.search_from v ~from:(i + 1) x) j
      else loop i (SV.search_from t ~from:(j + 1) s)
    end
  in
  loop 0 0

(* Does the table share at least one subject with [t]?  The same
   double-galloping walk, stopping at the first hit. *)
let table_intersects v t =
  let nv = Pair_vector.length v and nt = SV.length t in
  let rec loop i j =
    i < nv && j < nt
    &&
    let s = Pair_vector.key_at v i and x = SV.get t j in
    if s = x then true
    else if s < x then loop (Pair_vector.search_from v ~from:(i + 1) x) j
    else loop i (SV.search_from t ~from:(j + 1) s)
  in
  loop 0 0

(* --- BQ1: counts of each Type object ---------------------------------- *)

let bq1 store ids =
  match store with
  | Stores.Hexa h -> (
      (* pos index of Type: each object entry's s-list length is the count. *)
      match Index.find_vector (Hexastore.pos h) ids.type_p with
      | None -> []
      | Some v ->
          let out = ref [] in
          Pair_vector.iter (fun o sl -> out := (o, SV.length sl) :: !out) v;
          List.rev !out)
  | Stores.Covp c -> (
      match Covp.object_vector c ids.type_p with
      | Some v ->
          (* COVP2: same access as the Hexastore. *)
          let out = ref [] in
          Pair_vector.iter (fun o sl -> out := (o, SV.length sl) :: !out) v;
          List.rev !out
      | None -> (
          (* COVP1: self-join aggregation on object value over pso. *)
          match Covp.subject_vector c ids.type_p with
          | None -> []
          | Some v ->
              let counts = Hashtbl.create 64 in
              Pair_vector.iter
                (fun _s ol ->
                  SV.iter
                    (fun o ->
                      Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
                    ol)
                v;
              Hashtbl.fold (fun o n acc -> (o, n) :: acc) counts []
              |> List.sort (fun (a, _) (b, _) -> compare a b)))

(* --- the Type:Text pre-selection --------------------------------------- *)

let text_subjects store ids = subjects_po store ~p:ids.type_p ~o:ids.text

(* --- BQ2: property frequencies over Text subjects ---------------------- *)

(* COVP phase 2 (both variants): join t against every property's subject
   vector, summing matched o-list lengths. *)
let covp_property_frequencies c restrict t =
  let out = ref [] in
  SV.iter
    (fun p ->
      match Covp.subject_vector c p with
      | None -> ()
      | Some v ->
          let freq = ref 0 in
          iter_table_join v t (fun _s ol -> freq := !freq + SV.length ol);
          if !freq > 0 then out := (p, !freq) :: !out)
    (covp_scan_props c restrict);
  List.rev !out

(* Hexastore phase 2, merge-join formulation: one probe of the pso
   index, then for each property (its sorted header view, or the
   restriction) gallop-intersect the property's subject vector with the
   sorted [t], summing matched o-list lengths.  The earlier spo
   formulation probed the subject index once per Text subject — 12,674
   point probes at full Barton scale — where this one's probe count is
   independent of |t|. *)
let hexa_property_frequencies h restrict t =
  let pso = Hexastore.pso h in
  let props = match restrict with Some l -> l | None -> Index.headers_view pso in
  let out = ref [] in
  SV.iter
    (fun p ->
      match Index.find_vector pso p with
      | None -> ()
      | Some v ->
          let freq = ref 0 in
          iter_table_join v t (fun _s ol -> freq := !freq + SV.length ol);
          if !freq > 0 then out := (p, !freq) :: !out)
    props;
  List.rev !out

let bq2 ?restrict store ids =
  let restrict = restrict_sv restrict in
  let t = text_subjects store ids in
  match store with
  | Stores.Hexa h -> hexa_property_frequencies h restrict t
  | Stores.Covp c -> covp_property_frequencies c restrict t

(* --- BQ3: popular objects per property over Text subjects -------------- *)

(* Hexastore: find the relevant property set, then use pos for the
   per-object counts (as §5.2 says it must for this aggregation).  A
   property is relevant when its pso subject vector intersects [t] —
   decided by an early-exit galloping probe, not a per-subject spo
   walk. *)
let hexa_relevant_properties h restrict t =
  let pso = Hexastore.pso h in
  let props = match restrict with Some l -> l | None -> Index.headers_view pso in
  let out = ref [] in
  SV.iter
    (fun p ->
      match Index.find_vector pso p with
      | None -> ()
      | Some v -> if table_intersects v t then out := p :: !out)
    props;
  List.rev !out

let popular_via_pos find_object_vector props t =
  List.filter_map
    (fun p ->
      match find_object_vector p with
      | None -> None
      | Some v ->
          let objs = ref [] in
          Pair_vector.iter
            (fun o sl ->
              let c = Merge.intersect_count_adaptive sl t in
              if c > 1 then objs := (o, c) :: !objs)
            v;
          if !objs = [] then None else Some (p, List.rev !objs))
    props

let covp1_popular c restrict t =
  let out = ref [] in
  SV.iter
    (fun p ->
      match Covp.subject_vector c p with
      | None -> ()
      | Some v ->
          let counts = Hashtbl.create 16 in
          iter_table_join v t (fun _s ol ->
              SV.iter
                (fun o ->
                  Hashtbl.replace counts o
                    (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
                ol);
          let objs =
            Hashtbl.fold (fun o c acc -> if c > 1 then (o, c) :: acc else acc) counts []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          if objs <> [] then out := (p, objs) :: !out)
    (covp_scan_props c restrict);
  List.rev !out

let bq3_over restrict store t =
  match store with
  | Stores.Hexa h ->
      let props = hexa_relevant_properties h restrict t in
      let pos = Hexastore.pos h in
      popular_via_pos (fun p -> Index.find_vector pos p) props t
  | Stores.Covp c -> (
      match Covp.kind c with
      | Covp.Covp2 ->
          let props = SV.to_list (covp_scan_props c restrict) in
          popular_via_pos (fun p -> Covp.object_vector c p) props t
      | Covp.Covp1 -> covp1_popular c restrict t)

let bq3 ?restrict store ids =
  bq3_over (restrict_sv restrict) store (text_subjects store ids)

(* --- BQ4: BQ3 over Text ∧ French subjects ------------------------------ *)

let bq4 ?restrict store ids =
  (* Hexastore & COVP2: merge-join of two pos-derived subject lists;
     COVP1 computes each side by a table scan first — both arrive here as
     sorted vectors, so the intersection is a merge join for everyone,
     with COVP1 having paid the scans. *)
  let t =
    Merge.intersect
      (subjects_po store ~p:ids.type_p ~o:ids.text)
      (subjects_po store ~p:ids.language ~o:ids.french)
  in
  bq3_over (restrict_sv restrict) store t

(* --- BQ5: inference ----------------------------------------------------- *)

(* §5.2's BQ5 plan for Hexastore/COVP2: merge-join the (sorted) object
   vector of Records with the (sorted) subject vector of Type — walked
   in place, since the Records entries carry the recorder s-lists and
   the Type entries carry the type o-lists — keeping objects whose type
   passes [keep]; fan out through the recording subjects into a small
   table T of (subject, inferred type); then sort-merge T once against
   the (small) list s_dlc. *)
let infer_via_pos ~records_v ~type_v ~s_dlc ~keep =
  let table = ref [] in
  let nr = Pair_vector.length records_v and nt = Pair_vector.length type_v in
  let i = ref 0 and j = ref 0 in
  while !i < nr && !j < nt do
    let o = Pair_vector.key_at records_v !i and s = Pair_vector.key_at type_v !j in
    if o = s then begin
      let tys = Pair_vector.payload_at type_v !j in
      let recorders = Pair_vector.payload_at records_v !i in
      SV.iter
        (fun ty ->
          if keep ty then SV.iter (fun subj -> table := (subj, ty) :: !table) recorders)
        tys;
      incr i;
      incr j
    end
    else if o < s then incr i
    else incr j
  done;
  (* Sort T by subject (the per-step sort of a sort-merge join), then a
     single merge against s_dlc. *)
  let table = List.sort_uniq compare !table in
  let nd = SV.length s_dlc in
  let out = ref [] in
  let j = ref 0 in
  List.iter
    (fun ((subj, _) as row) ->
      while !j < nd && SV.get s_dlc !j < subj do
        incr j
      done;
      if !j < nd && SV.get s_dlc !j = subj then out := row :: !out)
    table;
  List.rev !out

let covp1_infer c ids ~s_dlc ~keep =
  (* Join s_dlc with the Records subject vector to get recorded objects
     (unsorted by object), sort them, then sort-merge with Type. *)
  match Covp.subject_vector c ids.records with
  | None -> []
  | Some v ->
      let pairs = ref [] in
      iter_table_join v s_dlc (fun s ol -> SV.iter (fun o -> pairs := (o, s) :: !pairs) ol);
      let pairs = List.sort compare !pairs in
      (match Covp.subject_vector c ids.type_p with
      | None -> []
      | Some tv ->
          let out = ref [] in
          let ntv = Pair_vector.length tv in
          let j = ref 0 in
          List.iter
            (fun (o, s) ->
              while !j < ntv && Pair_vector.key_at tv !j < o do
                incr j
              done;
              if !j < ntv && Pair_vector.key_at tv !j = o then
                SV.iter
                  (fun ty -> if keep ty then out := (s, ty) :: !out)
                  (Pair_vector.payload_at tv !j))
            pairs;
          List.sort_uniq compare !out)

let dlc_subjects store ids = subjects_po store ~p:ids.origin ~o:ids.dlc

let bq5_generic store ids ~keep =
  let s_dlc = dlc_subjects store ids in
  let via_pos records_v type_v =
    match (records_v, type_v) with
    | Some records_v, Some type_v -> infer_via_pos ~records_v ~type_v ~s_dlc ~keep
    | _ -> []
  in
  match store with
  | Stores.Hexa h ->
      via_pos
        (Index.find_vector (Hexastore.pos h) ids.records)
        (Index.find_vector (Hexastore.pso h) ids.type_p)
  | Stores.Covp c -> (
      match Covp.kind c with
      | Covp.Covp2 ->
          via_pos (Covp.object_vector c ids.records) (Covp.subject_vector c ids.type_p)
      | Covp.Covp1 -> covp1_infer c ids ~s_dlc ~keep)

let bq5 store ids = bq5_generic store ids ~keep:(fun ty -> ty <> ids.text)

(* --- BQ6: known-or-inferred Text, aggregated as BQ2 --------------------- *)

let bq6 ?restrict store ids =
  let restrict = restrict_sv restrict in
  let known = text_subjects store ids in
  let inferred = bq5_generic store ids ~keep:(fun ty -> ty = ids.text) in
  let inferred_subjects = SV.of_list (List.map fst inferred) in
  let t = Merge.union known inferred_subjects in
  match store with
  | Stores.Hexa h -> hexa_property_frequencies h restrict t
  | Stores.Covp c -> covp_property_frequencies c restrict t

(* --- BQ7: Point "end" → Encoding and Type ------------------------------ *)

let bq7 store ids =
  let t = subjects_po store ~p:ids.point ~o:ids.end_point in
  (* All methods proceed by merge-joining t with the subject vectors of
     Encoding and Type (§5.2: COVP2/Hexastore differ only in how t was
     obtained). *)
  let joined p =
    let table =
      match store with
      | Stores.Hexa h -> Index.find_vector (Hexastore.pso h) p
      | Stores.Covp c -> Covp.subject_vector c p
    in
    let results = Hashtbl.create 64 in
    (match table with
    | None -> ()
    | Some v -> iter_table_join v t (fun s ol -> Hashtbl.replace results s (SV.to_list ol)));
    results
  in
  let encodings = joined ids.encoding in
  let types = joined ids.type_p in
  SV.fold
    (fun acc s ->
      let enc = Option.value ~default:[] (Hashtbl.find_opt encodings s) in
      let tys = Option.value ~default:[] (Hashtbl.find_opt types s) in
      (s, enc, tys) :: acc)
    [] t
  |> List.rev
