let now () = Telemetry.Clock.now ()

let time ?(warmup = 1) ?(repeats = 3) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  (* Calibrate a batch size so each timed sample spans at least ~1 ms,
     keeping micro-second queries above the clock's resolution. *)
  let t0 = now () in
  let calibration = f () in
  let once = now () -. t0 in
  let iters =
    if once >= 1e-3 then 1 else min 20_000 (max 1 (int_of_float (1e-3 /. Float.max once 1e-9)))
  in
  let samples = Array.make repeats 0. in
  let result = ref calibration in
  for i = 0 to repeats - 1 do
    let t0 = now () in
    for _ = 1 to iters do
      result := f ()
    done;
    samples.(i) <- (now () -. t0) /. float_of_int iters
  done;
  Array.sort compare samples;
  (samples.(repeats / 2), !result)

type sized_stores = {
  n_triples : int;
  stores : Stores.t list;
  dict : Dict.Term_dict.t;
}

let build_prefixes ~kinds ~sizes triples =
  let dict = Dict.Term_dict.create () in
  let encoded =
    Array.of_seq (Seq.map (Dict.Term_dict.encode_triple dict) triples)
  in
  let total = Array.length encoded in
  let sizes = List.sort_uniq compare (List.map (fun s -> min s total) sizes) in
  List.map
    (fun n ->
      let prefix = Array.sub encoded 0 n in
      let stores =
        List.map
          (fun kind ->
            let store = Stores.create ~dict kind in
            ignore (Stores.load store prefix);
            store)
          kinds
      in
      { n_triples = n; stores; dict })
    sizes

type point = {
  size : int;
  method_ : string;
  seconds : float;
}

let pp_series ~figure ~title ppf points =
  Format.fprintf ppf "# figure %s — %s@\n" figure title;
  Format.fprintf ppf "# triples  method  seconds@\n";
  List.iter
    (fun { size; method_; seconds } ->
      Format.fprintf ppf "%d %s %.3e@\n" size method_ seconds)
    points

let words_to_mb w = float_of_int (w * 8) /. (1024. *. 1024.)
