(* Validator for the BENCH_PR<n>.json artifacts the benchmark harness
   emits (bench/main.exe --json): parses the file with Telemetry.Json
   and checks the keys every per-PR benchmark record must carry, so the
   @bench-smoke alias fails loudly when the emission path regresses. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("bench-check: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let require ~ctx json key =
  match Telemetry.Json.member key json with
  | Some v -> v
  | None -> fail "%s: missing key %S" ctx key

let require_number ~ctx json key =
  match Telemetry.Json.to_float_opt (require ~ctx json key) with
  | Some f -> f
  | None -> fail "%s: key %S is not a number" ctx key

let check_workload name json =
  let ctx = "workloads." ^ name in
  ignore (require_number ~ctx json "triples");
  ignore (require_number ~ctx json "memory_mb");
  match require ~ctx json "queries" with
  | Telemetry.Json.Obj [] -> fail "%s.queries is empty" ctx
  | Telemetry.Json.Obj queries ->
      List.iter
        (fun (qname, q) ->
          let ctx = ctx ^ ".queries." ^ qname in
          ignore (require_number ~ctx q "seconds");
          match require ~ctx q "probes" with
          | Telemetry.Json.Obj _ -> ()
          | _ -> fail "%s.probes is not an object" ctx)
        queries
  | _ -> fail "%s.queries is not an object" ctx

(* The executor join ablation (top-level "join" section, emitted since
   PR 5): for every BQ-class query the planner's merge/hash picks must
   probe the indices at least 5x less often than the forced nested-loop
   ablation, and — outside the noise-dominated smoke mode — win
   aggregate wall time too. *)
let check_join ~mode json =
  match Telemetry.Json.member "join" json with
  | None | Some Telemetry.Json.Null -> ()
  | Some join -> (
      let ctx = "join" in
      ignore (require_number ~ctx join "triples");
      match require ~ctx join "queries" with
      | Telemetry.Json.Obj [] -> fail "join.queries is empty"
      | Telemetry.Json.Obj queries ->
          let totals =
            List.map
              (fun (qname, q) ->
                let ctx = "join.queries." ^ qname in
                ignore (require_number ~ctx q "rows");
                let arm name =
                  let a = require ~ctx q name in
                  let ctx = ctx ^ "." ^ name in
                  (require_number ~ctx a "seconds", require_number ~ctx a "probes")
                in
                let n_s, n_p = arm "nested" and p_s, p_p = arm "planned" in
                if p_p <= 0. then fail "%s: planned arm made no index probes" ctx;
                if n_p < 5. *. p_p then
                  fail "%s: planned probes (%g) not 5x under nested-loop probes (%g)" ctx
                    p_p n_p;
                Printf.printf "bench-check: %s probe reduction %.1fx (rows unchanged)\n"
                  ctx (n_p /. p_p);
                (n_s, p_s))
              queries
          in
          let nested_s = List.fold_left (fun a (n, _) -> a +. n) 0. totals
          and planned_s = List.fold_left (fun a (_, p) -> a +. p) 0. totals in
          if (not (String.equal mode "smoke")) && planned_s >= nested_s then
            fail "join: planned strategies (%gs) not faster than nested-loop (%gs) overall"
              planned_s nested_s;
          Printf.printf "bench-check: join wall time nested %.4gs vs planned %.4gs\n"
            nested_s planned_s
      | _ -> fail "join.queries is not an object")

(* The PR-7 observability section: the flight recorder's measured
   overhead must stay under the 5% acceptance bar, the traced run must
   actually have recorded events and logged a slow query, and the
   exported scan-size quantiles must be monotone.  Required from PR 7
   on; older artifacts may omit it.  Like the join wall-time check, the
   tight 5% bar only applies outside smoke mode: on the seconds-scale
   smoke store a single BGP count is a few microseconds, so the
   recorder's fixed per-query cost (three clock reads and ring stores)
   is a visible fraction and the bar relaxes to 25%. *)
let check_profiling ~pr ~mode json =
  let ratio_bar = if String.equal mode "smoke" then 1.25 else 1.05 in
  match Telemetry.Json.member "profiling" json with
  | None | Some Telemetry.Json.Null ->
      if pr >= 7 then fail "profiling section missing (required since PR 7)"
  | Some prof ->
      let ctx = "profiling" in
      ignore (require_number ~ctx prof "triples");
      let fr = require ~ctx prof "flight_recorder" in
      let ctx_fr = "profiling.flight_recorder" in
      let off = require_number ~ctx:ctx_fr fr "events_off_seconds" in
      let on = require_number ~ctx:ctx_fr fr "events_on_seconds" in
      let ratio = require_number ~ctx:ctx_fr fr "overhead_ratio" in
      if off <= 0. || on <= 0. then fail "%s: timings must be positive" ctx_fr;
      if ratio >= ratio_bar then
        fail "%s: recorder overhead %.1f%% breaches the %.0f%% bar" ctx_fr
          ((ratio -. 1.) *. 100.)
          ((ratio_bar -. 1.) *. 100.);
      if require_number ~ctx:ctx_fr fr "events_recorded" <= 0. then
        fail "%s: traced arm recorded no events" ctx_fr;
      if require_number ~ctx:ctx_fr fr "events_dropped" < 0. then
        fail "%s: negative drop count" ctx_fr;
      let sq = require ~ctx prof "slow_query" in
      let ctx_sq = "profiling.slow_query" in
      if require_number ~ctx:ctx_sq sq "logged" < 1. then
        fail "%s: zero-threshold run did not log a slow query" ctx_sq;
      let qs = require ~ctx prof "scan_terminal_size_quantiles" in
      let ctx_q = "profiling.scan_terminal_size_quantiles" in
      if require_number ~ctx:ctx_q qs "count" <= 0. then
        fail "%s: histogram has no observations" ctx_q;
      let p50 = require_number ~ctx:ctx_q qs "p50" in
      let p95 = require_number ~ctx:ctx_q qs "p95" in
      let p99 = require_number ~ctx:ctx_q qs "p99" in
      if not (p50 <= p95 && p95 <= p99) then
        fail "%s: quantiles not monotone (p50=%g p95=%g p99=%g)" ctx_q p50 p95 p99;
      Printf.printf
        "bench-check: profiling recorder overhead %.2f%%, scan-size p50/p95/p99 = %g/%g/%g\n"
        ((ratio -. 1.) *. 100.) p50 p95 p99

(* The PR-8 parallel-execution section: the speedup curve over the pool
   widths plus per-arm latency quantiles.  Required from PR 8 on.
   Structural demands are unconditional (positive timings, monotone
   p50/p95/p99, aggregate speedups present per width > 1); the >1x
   aggregate speedup at the widest arm is only demanded when the
   artifact itself reports cores >= 2 and the run is not smoke-sized —
   on a single-core host extra domains cannot win, they can only pay
   handoff overhead, so there the bar is a 0.2x sanity floor. *)
let check_parallel ~pr ~mode json =
  match Telemetry.Json.member "parallel" json with
  | None | Some Telemetry.Json.Null ->
      if pr >= 8 then fail "parallel section missing (required since PR 8)"
  | Some par ->
      let ctx = "parallel" in
      let cores = require_number ~ctx par "cores" in
      ignore (require_number ~ctx par "triples");
      let widths =
        match require ~ctx par "widths" with
        | Telemetry.Json.List ws ->
            List.filter_map Telemetry.Json.to_float_opt ws |> List.map int_of_float
        | _ -> fail "parallel.widths is not a list"
      in
      let max_width = List.fold_left max 1 widths in
      (match require ~ctx par "queries" with
      | Telemetry.Json.Obj [] -> fail "parallel.queries is empty"
      | Telemetry.Json.Obj queries ->
          List.iter
            (fun (qname, q) ->
              let ctx = "parallel.queries." ^ qname in
              if require_number ~ctx q "rows" < 0. then fail "%s: negative row count" ctx;
              List.iter
                (fun w ->
                  let arm = require ~ctx q (Printf.sprintf "d%d" w) in
                  let ctx = Printf.sprintf "%s.d%d" ctx w in
                  if require_number ~ctx arm "seconds" <= 0. then
                    fail "%s: non-positive wall time" ctx;
                  let p50 = require_number ~ctx arm "p50_us" in
                  let p95 = require_number ~ctx arm "p95_us" in
                  let p99 = require_number ~ctx arm "p99_us" in
                  if not (p50 <= p95 && p95 <= p99) then
                    fail "%s: latency quantiles not monotone (p50=%g p95=%g p99=%g)" ctx p50
                      p95 p99)
                widths)
            queries
      | _ -> fail "parallel.queries is not an object");
      let agg = require ~ctx par "aggregate_speedup" in
      List.iter
        (fun w ->
          if w > 1 then begin
            let key = Printf.sprintf "d%d" w in
            let s = require_number ~ctx:"parallel.aggregate_speedup" agg key in
            let bar =
              if w = max_width && cores >= 2. && not (String.equal mode "smoke") then 1.0
              else 0.2
            in
            if s <= bar then
              fail "parallel.aggregate_speedup.%s: %.2fx does not clear the %.1fx bar (%g cores)"
                key s bar cores;
            Printf.printf "bench-check: parallel aggregate speedup at width %d: %.2fx (%g cores)\n"
              w s cores
          end)
        widths

(* The PR-9 pool-accounting section: the parallel figure's widest arm
   re-run with telemetry on, snapshotting [Query.Par.stats] and the
   task wait/run histograms.  Required from PR 9 on.  The invariants
   are the ones the pool's own hammer test enforces, re-checked here on
   the artifact: the per-lane tallies must sum to the completed count,
   nothing may still be queued or in flight after the queries return,
   utilization fractions live in [0,1] and sum to ~1, and the latency
   quantiles are monotone.  All hold at any width/core count, so none
   are mode-gated. *)
let check_pool ~pr json =
  match Telemetry.Json.member "pool" json with
  | None | Some Telemetry.Json.Null ->
      if pr >= 9 then fail "pool section missing (required since PR 9)"
  | Some pool ->
      let ctx = "pool" in
      let num k = require_number ~ctx pool k in
      let width = num "width" and submitted = num "submitted" and completed = num "completed" in
      if width < 1. then fail "%s: width %g < 1" ctx width;
      if submitted <> completed then
        fail "%s: submitted (%g) <> completed (%g) on a quiescent pool" ctx submitted completed;
      if num "queue_depth" <> 0. then fail "%s: queue not drained" ctx;
      if num "in_flight" <> 0. then fail "%s: tasks still in flight" ctx;
      if num "caller_helped" < 0. then fail "%s: negative caller_helped" ctx;
      let floats key =
        match require ~ctx pool key with
        | Telemetry.Json.List vs -> List.filter_map Telemetry.Json.to_float_opt vs
        | _ -> fail "%s.%s is not a list" ctx key
      in
      let lanes = floats "lane_tasks" and utils = floats "utilization" in
      let lane_sum = List.fold_left ( +. ) 0. lanes in
      if lane_sum <> completed then
        fail "%s: lane_tasks sum (%g) <> completed (%g)" ctx lane_sum completed;
      List.iter
        (fun u -> if u < 0. || u > 1. then fail "%s: utilization %g outside [0,1]" ctx u)
        utils;
      let util_sum = List.fold_left ( +. ) 0. utils in
      if completed > 0. && abs_float (util_sum -. 1.) > 1e-6 then
        fail "%s: utilization sums to %g, not 1" ctx util_sum;
      let hist key =
        match require ~ctx pool key with
        | Telemetry.Json.Null -> ()
        | h ->
            let ctx = ctx ^ "." ^ key in
            if require_number ~ctx h "count" < 0. then fail "%s: negative count" ctx;
            let p50 = require_number ~ctx h "p50_us" in
            let p95 = require_number ~ctx h "p95_us" in
            let p99 = require_number ~ctx h "p99_us" in
            if not (p50 <= p95 && p95 <= p99) then
              fail "%s: quantiles not monotone (p50=%g p95=%g p99=%g)" ctx p50 p95 p99
      in
      hist "task_wait_us";
      hist "task_run_us";
      Printf.printf "bench-check: pool width %g ran %g tasks over %d lanes (%g caller-helped)\n"
        width completed (List.length lanes) (num "caller_helped")

(* The PR-10 representation sweep: each load workload rebuilt under
   every index representation, plus the join figure's planned queries
   re-run per representation.  Required from PR 10 on.  The headline
   bars are the PR's acceptance criteria: at least one compressed
   representation must shrink the measured store footprint by >= 2.5x
   on {e both} load workloads while keeping the join figure's aggregate
   wall time within 1.3x of Raw.  The wall bar is waived in smoke mode,
   where a single query is microseconds of noise; the memory ratio is a
   structural property of the encoding and holds at any store size. *)
let check_repr ~pr ~mode json =
  match Telemetry.Json.member "repr" json with
  | None | Some Telemetry.Json.Null ->
      if pr >= 10 then fail "repr section missing (required since PR 10)"
  | Some repr ->
      let compressed = [ "packed"; "delta_varint" ] in
      let all_reprs = "raw" :: compressed in
      let workload_names = [ "lubm"; "barton" ] in
      let workloads =
        match require ~ctx:"repr" repr "workloads" with
        | Telemetry.Json.Obj ws -> ws
        | _ -> fail "repr.workloads is not an object"
      in
      let arm w r =
        match List.assoc_opt w workloads with
        | None -> fail "repr.workloads missing %S" w
        | Some wj -> require ~ctx:("repr.workloads." ^ w) wj r
      in
      List.iter
        (fun w ->
          List.iter
            (fun r ->
              let ctx = Printf.sprintf "repr.workloads.%s.%s" w r in
              let a = arm w r in
              if require_number ~ctx a "memory_mb" <= 0. then
                fail "%s: non-positive memory_mb" ctx;
              if require_number ~ctx a "aggregate_seconds" < 0. then
                fail "%s: negative aggregate wall time" ctx)
            all_reprs)
        workload_names;
      let mem w r =
        require_number ~ctx:(Printf.sprintf "repr.workloads.%s.%s" w r) (arm w r) "memory_mb"
      in
      let join = require ~ctx:"repr" repr "join" in
      let wall r =
        require_number ~ctx:("repr.join." ^ r) (require ~ctx:"repr.join" join r)
          "aggregate_seconds"
      in
      let raw_wall = wall "raw" in
      if raw_wall <= 0. then fail "repr.join.raw: non-positive aggregate wall time";
      let qualifying =
        List.filter
          (fun r ->
            let min_ratio =
              List.fold_left (fun acc w -> min acc (mem w "raw" /. mem w r)) infinity
                workload_names
            in
            let wall_ok = String.equal mode "smoke" || wall r <= 1.3 *. raw_wall in
            List.iter
              (fun w ->
                Printf.printf "bench-check: repr %s on %s: %.2fx smaller (%.2f -> %.2f MB)\n" r
                  w (mem w "raw" /. mem w r) (mem w "raw") (mem w r))
              workload_names;
            Printf.printf "bench-check: repr %s join wall %.4gs vs raw %.4gs (%.2fx)\n" r
              (wall r) raw_wall (wall r /. raw_wall);
            min_ratio >= 2.5 && wall_ok)
          compressed
      in
      if qualifying = [] then
        fail
          "repr: no compressed representation clears the bars (>= 2.5x memory reduction on \
           both workloads, join wall within 1.3x of raw)"

let parse_file path =
  match Telemetry.Json.of_string (read_file path) with
  | Ok j -> j
  | Error msg -> fail "%s does not parse: %s" path msg

(* --compare OLD NEW: flag >2x wall-time or probe-count regressions on
   every query the two artifacts share (workload queries by total probe
   count, join queries per arm), plus >1.5x memory_mb growth on shared
   workload figures when both artifacts carry PR 10's exact accounting
   (older gauges were coarse, so cross-era ratios would be noise). *)
let compare_files old_path new_path =
  let old_json = parse_file old_path and new_json = parse_file new_path in
  let regressions = ref [] in
  let flag ?(bar = 2.) what old_v new_v =
    if old_v > 0. && new_v > bar *. old_v then
      regressions := Printf.sprintf "%s: %g -> %g (%.1fx)" what old_v new_v (new_v /. old_v) :: !regressions
  in
  let queries_of ctx json path =
    match
      List.fold_left
        (fun acc key -> Option.bind acc (Telemetry.Json.member key))
        (Some json) path
    with
    | Some (Telemetry.Json.Obj qs) -> qs
    | _ ->
        ignore ctx;
        []
  in
  let probe_total q =
    match Telemetry.Json.member "probes" q with
    | Some (Telemetry.Json.Obj probes) ->
        List.fold_left
          (fun acc (_, v) -> acc +. Option.value ~default:0. (Telemetry.Json.to_float_opt v))
          0. probes
    | Some v -> Option.value ~default:0. (Telemetry.Json.to_float_opt v)
    | None -> 0.
  in
  let seconds q = Option.value ~default:0. (Option.bind (Telemetry.Json.member "seconds" q) Telemetry.Json.to_float_opt) in
  List.iter
    (fun workload ->
      let olds = queries_of workload old_json [ "workloads"; workload; "queries" ]
      and news = queries_of workload new_json [ "workloads"; workload; "queries" ] in
      List.iter
        (fun (qname, oq) ->
          match List.assoc_opt qname news with
          | None -> ()
          | Some nq ->
              flag (workload ^ "." ^ qname ^ ".seconds") (seconds oq) (seconds nq);
              flag (workload ^ "." ^ qname ^ ".probes") (probe_total oq) (probe_total nq))
        olds)
    [ "lubm"; "barton" ];
  let pr_of json =
    match Telemetry.Json.member "pr" json with Some (Telemetry.Json.Int n) -> n | _ -> 0
  in
  if pr_of old_json >= 10 && pr_of new_json >= 10 then begin
    let memory_mb json workload =
      List.fold_left
        (fun acc key -> Option.bind acc (Telemetry.Json.member key))
        (Some json)
        [ "workloads"; workload; "memory_mb" ]
      |> Fun.flip Option.bind Telemetry.Json.to_float_opt
    in
    List.iter
      (fun workload ->
        match (memory_mb old_json workload, memory_mb new_json workload) with
        | Some o, Some n -> flag ~bar:1.5 (workload ^ ".memory_mb") o n
        | _ -> ())
      [ "lubm"; "barton" ]
  end;
  let old_join = queries_of "join" old_json [ "join"; "queries" ]
  and new_join = queries_of "join" new_json [ "join"; "queries" ] in
  List.iter
    (fun (qname, oq) ->
      match List.assoc_opt qname new_join with
      | None -> ()
      | Some nq ->
          List.iter
            (fun arm ->
              match (Telemetry.Json.member arm oq, Telemetry.Json.member arm nq) with
              | Some oa, Some na ->
                  flag ("join." ^ qname ^ "." ^ arm ^ ".seconds") (seconds oa) (seconds na);
                  flag ("join." ^ qname ^ "." ^ arm ^ ".probes") (probe_total oa) (probe_total na)
              | _ -> ())
            [ "nested"; "planned" ])
    old_join;
  match List.rev !regressions with
  | [] -> Printf.printf "bench-check: no >2x regressions from %s to %s\n" old_path new_path
  | regs ->
      List.iter (fun r -> prerr_endline ("bench-check: regression " ^ r)) regs;
      fail "%d regression(s) from %s to %s" (List.length regs) old_path new_path

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | [| _; "--compare"; old_path; new_path |] ->
        compare_files old_path new_path;
        exit 0
    | _ -> fail "usage: bench_check FILE.json | bench_check --compare OLD.json NEW.json"
  in
  let json = parse_file path in
  (match require ~ctx:"root" json "schema" with
  | Telemetry.Json.String "hexastore-bench/v1" -> ()
  | _ -> fail "schema is not \"hexastore-bench/v1\"");
  let mode =
    match require ~ctx:"root" json "mode" with
    | Telemetry.Json.String m -> m
    | _ -> fail "mode is not a string"
  in
  let pr =
    match Telemetry.Json.member "pr" json with
    | Some (Telemetry.Json.Int n) -> n
    | _ -> 0
  in
  let workloads = require ~ctx:"root" json "workloads" in
  check_workload "lubm" (require ~ctx:"workloads" workloads "lubm");
  check_workload "barton" (require ~ctx:"workloads" workloads "barton");
  check_join ~mode json;
  check_profiling ~pr ~mode json;
  check_parallel ~pr ~mode json;
  check_pool ~pr json;
  check_repr ~pr ~mode json;
  let overhead = require ~ctx:"root" json "telemetry_overhead" in
  let off = require_number ~ctx:"telemetry_overhead" overhead "disabled_seconds" in
  let on = require_number ~ctx:"telemetry_overhead" overhead "enabled_seconds" in
  if off <= 0. || on <= 0. then fail "telemetry_overhead timings must be positive";
  let figures =
    match require ~ctx:"root" json "figures" with
    | Telemetry.Json.List figs -> figs
    | _ -> fail "figures is not a list"
  in
  (* When the artifact carries the load ablation, it must compare all
     five write paths, and delta update staging must beat per-triple
     insertion at the largest sweep (the PR 3 headline number). *)
  let is_figure name fig =
    match Telemetry.Json.member "figure" fig with
    | Some (Telemetry.Json.String n) -> String.equal n name
    | _ -> false
  in
  (match List.find_opt (is_figure "abl-load") figures with
  | None -> ()
  | Some fig ->
      let points =
        match require ~ctx:"abl-load" fig "points" with
        | Telemetry.Json.List pts -> pts
        | _ -> fail "abl-load.points is not a list"
      in
      let decoded =
        List.map
          (fun p ->
            let ctx = "abl-load.points" in
            let size = int_of_float (require_number ~ctx p "size") in
            let meth =
              match require ~ctx p "method" with
              | Telemetry.Json.String m -> m
              | _ -> fail "%s: method is not a string" ctx
            in
            (size, meth, require_number ~ctx p "seconds"))
          points
      in
      List.iter
        (fun m ->
          if not (List.exists (fun (_, m', _) -> String.equal m m') decoded) then
            fail "abl-load is missing the %S series" m)
        [ "bulk"; "incremental"; "delta"; "update-pertriple"; "update-delta" ];
      let largest = List.fold_left (fun acc (n, _, _) -> max acc n) 0 decoded in
      let at size meth =
        match
          List.find_opt (fun (n, m, _) -> n = size && String.equal m meth) decoded
        with
        | Some (_, _, s) -> s
        | None -> fail "abl-load: no %S point at size %d" meth size
      in
      let upd_triple = at largest "update-pertriple"
      and upd_delta = at largest "update-delta" in
      if upd_delta <= 0. then fail "abl-load: non-positive update-delta timing";
      if upd_delta >= upd_triple then
        fail "abl-load: delta staging (%gs) not faster than per-triple updates (%gs)"
          upd_delta upd_triple;
      Printf.printf
        "bench-check: abl-load update staging speedup at %d-triple base: %.1fx\n"
        largest (upd_triple /. upd_delta);
      Printf.printf "bench-check: abl-load full-load incremental/delta at %d: %.1fx\n"
        largest (at largest "incremental" /. at largest "delta"));
  Printf.printf "bench-check: %s OK\n" path
