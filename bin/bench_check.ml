(* Validator for the BENCH_PR<n>.json artifacts the benchmark harness
   emits (bench/main.exe --json): parses the file with Telemetry.Json
   and checks the keys every per-PR benchmark record must carry, so the
   @bench-smoke alias fails loudly when the emission path regresses. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("bench-check: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let require ~ctx json key =
  match Telemetry.Json.member key json with
  | Some v -> v
  | None -> fail "%s: missing key %S" ctx key

let require_number ~ctx json key =
  match Telemetry.Json.to_float_opt (require ~ctx json key) with
  | Some f -> f
  | None -> fail "%s: key %S is not a number" ctx key

let check_workload name json =
  let ctx = "workloads." ^ name in
  ignore (require_number ~ctx json "triples");
  ignore (require_number ~ctx json "memory_mb");
  match require ~ctx json "queries" with
  | Telemetry.Json.Obj [] -> fail "%s.queries is empty" ctx
  | Telemetry.Json.Obj queries ->
      List.iter
        (fun (qname, q) ->
          let ctx = ctx ^ ".queries." ^ qname in
          ignore (require_number ~ctx q "seconds");
          match require ~ctx q "probes" with
          | Telemetry.Json.Obj _ -> ()
          | _ -> fail "%s.probes is not an object" ctx)
        queries
  | _ -> fail "%s.queries is not an object" ctx

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ -> fail "usage: bench_check FILE.json"
  in
  let json =
    match Telemetry.Json.of_string (read_file path) with
    | Ok json -> Ok json
    | Error msg -> Error msg
  in
  let json = match json with Ok j -> j | Error msg -> fail "%s does not parse: %s" path msg in
  (match require ~ctx:"root" json "schema" with
  | Telemetry.Json.String "hexastore-bench/v1" -> ()
  | _ -> fail "schema is not \"hexastore-bench/v1\"");
  (match require ~ctx:"root" json "mode" with
  | Telemetry.Json.String _ -> ()
  | _ -> fail "mode is not a string");
  let workloads = require ~ctx:"root" json "workloads" in
  check_workload "lubm" (require ~ctx:"workloads" workloads "lubm");
  check_workload "barton" (require ~ctx:"workloads" workloads "barton");
  let overhead = require ~ctx:"root" json "telemetry_overhead" in
  let off = require_number ~ctx:"telemetry_overhead" overhead "disabled_seconds" in
  let on = require_number ~ctx:"telemetry_overhead" overhead "enabled_seconds" in
  if off <= 0. || on <= 0. then fail "telemetry_overhead timings must be positive";
  let figures =
    match require ~ctx:"root" json "figures" with
    | Telemetry.Json.List figs -> figs
    | _ -> fail "figures is not a list"
  in
  (* When the artifact carries the load ablation, it must compare all
     five write paths, and delta update staging must beat per-triple
     insertion at the largest sweep (the PR 3 headline number). *)
  let is_figure name fig =
    match Telemetry.Json.member "figure" fig with
    | Some (Telemetry.Json.String n) -> String.equal n name
    | _ -> false
  in
  (match List.find_opt (is_figure "abl-load") figures with
  | None -> ()
  | Some fig ->
      let points =
        match require ~ctx:"abl-load" fig "points" with
        | Telemetry.Json.List pts -> pts
        | _ -> fail "abl-load.points is not a list"
      in
      let decoded =
        List.map
          (fun p ->
            let ctx = "abl-load.points" in
            let size = int_of_float (require_number ~ctx p "size") in
            let meth =
              match require ~ctx p "method" with
              | Telemetry.Json.String m -> m
              | _ -> fail "%s: method is not a string" ctx
            in
            (size, meth, require_number ~ctx p "seconds"))
          points
      in
      List.iter
        (fun m ->
          if not (List.exists (fun (_, m', _) -> String.equal m m') decoded) then
            fail "abl-load is missing the %S series" m)
        [ "bulk"; "incremental"; "delta"; "update-pertriple"; "update-delta" ];
      let largest = List.fold_left (fun acc (n, _, _) -> max acc n) 0 decoded in
      let at size meth =
        match
          List.find_opt (fun (n, m, _) -> n = size && String.equal m meth) decoded
        with
        | Some (_, _, s) -> s
        | None -> fail "abl-load: no %S point at size %d" meth size
      in
      let upd_triple = at largest "update-pertriple"
      and upd_delta = at largest "update-delta" in
      if upd_delta <= 0. then fail "abl-load: non-positive update-delta timing";
      if upd_delta >= upd_triple then
        fail "abl-load: delta staging (%gs) not faster than per-triple updates (%gs)"
          upd_delta upd_triple;
      Printf.printf
        "bench-check: abl-load update staging speedup at %d-triple base: %.1fx\n"
        largest (upd_triple /. upd_delta);
      Printf.printf "bench-check: abl-load full-load incremental/delta at %d: %.1fx\n"
        largest (at largest "incremental" /. at largest "delta"));
  Printf.printf "bench-check: %s OK\n" path
