(* The repo's source lint gate, run as [dune build @lint].

   Modes:

   - [lint.exe ROOTS..] (default root: lib) — scan the trees with
     [Check.Lint] and exit non-zero when any rule fires: a library .ml
     without a .mli, Obj.magic, stdout printing from library code, a
     catch-all [with _ ->] handler, a raw clock read, a query-layer
     point probe, or a module-global mutable binding without a
     [domain-safety:] attestation.  See lib/check/lint.mli.

   - [lint.exe --domain-report ROOTS..] — print the DOMAIN_SAFETY.md
     markdown inventory ([Check.Mutability]) to stdout; the @check
     freshness gate diffs it against the checked-in file.

   - [lint.exe --json ROOTS..] — the same inventory as JSON
     (Telemetry.Json) for CI diffing. *)

let () =
  let mode, roots =
    match Array.to_list Sys.argv with
    | _ :: "--domain-report" :: rest -> (`Report, rest)
    | _ :: "--json" :: rest -> (`Json, rest)
    | _ :: rest -> (`Lint, rest)
    | [] -> (`Lint, [])
  in
  let roots = if roots = [] then [ "lib" ] else roots in
  match mode with
  | `Report -> print_string (Check.Mutability.to_markdown (Check.Mutability.analyze_dirs roots))
  | `Json ->
      print_endline
        (Telemetry.Json.to_string (Check.Mutability.to_json (Check.Mutability.analyze_dirs roots)))
  | `Lint -> (
      let violations = List.concat_map Check.Lint.scan_dir roots in
      (* Surface the check.lint.* counters when telemetry is on, same
         shape as the query CLI's registry dump. *)
      if !Telemetry.enabled then Format.eprintf "%a@." Telemetry.report ();
      match violations with
      | [] -> Printf.printf "lint: OK (%s clean)\n" (String.concat ", " roots)
      | vs ->
          List.iter (fun v -> prerr_endline (Check.Violation.to_string v)) vs;
          Printf.eprintf "lint: %d violation(s) in %s\n" (List.length vs)
            (String.concat ", " roots);
          exit 1)
