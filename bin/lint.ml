(* The repo's source lint gate, run as [dune build @lint].

   Scans the given directory trees (default: lib) with [Check.Lint] and
   exits non-zero when any rule fires: a library .ml without a .mli,
   Obj.magic, stdout printing from library code, or a catch-all
   [with _ ->] handler.  See lib/check/lint.mli for the rationale. *)

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ -> [ "lib" ]
  in
  let violations = List.concat_map Check.Lint.scan_dir roots in
  match violations with
  | [] -> Printf.printf "lint: OK (%s clean)\n" (String.concat ", " roots)
  | vs ->
      List.iter (fun v -> prerr_endline (Check.Violation.to_string v)) vs;
      Printf.eprintf "lint: %d violation(s) in %s\n" (List.length vs) (String.concat ", " roots);
      exit 1
