(* hexastore — command-line front end to the store.

   Subcommands:
     query     load RDF data and run a SPARQL-subset query
     explain   show the query plan (optionally executed: --analyze)
     profile   run a query under the profiler: operator-attributed
               wall/probes/rows/GC, counter deltas, flight recorder
     metrics   run optional queries and export the registry (Prometheus
               text exposition or JSON) and Chrome trace spans
     stats     load RDF data and print store statistics
     convert   translate between N-Triples and Turtle
     snapshot  compile RDF data into a binary store snapshot

   Data files may be N-Triples (.nt), Turtle (.ttl) or binary snapshots
   (.snap); the format is chosen by extension, overridable with
   --format. *)

open Cmdliner

let detect_format ~format path =
  match format with
  | Some f -> f
  | None ->
      if Filename.check_suffix path ".ttl" then "turtle"
      else if Filename.check_suffix path ".snap" then "snapshot"
      else "ntriples"

let load_data ~format path =
  match detect_format ~format path with
  | "turtle" -> Rdf.Turtle.load_file ~namespaces:(Rdf.Namespace.default ()) path
  | "ntriples" -> Rdf.Ntriples.load_file path
  | "snapshot" -> Hexa.Hexastore.to_triples (Hexa.Snapshot.load path)
  | f -> failwith (Printf.sprintf "unknown format %S (expected ntriples, turtle or snapshot)" f)

let load_store ~format path =
  match detect_format ~format path with
  | "snapshot" -> Hexa.Snapshot.load path
  | _ -> Hexa.Hexastore.of_triples (load_data ~format path)

let handle_errors f =
  try f () with
  | Rdf.Ntriples.Parse_error (line, msg) ->
      Format.eprintf "N-Triples parse error, line %d: %s@." line msg;
      exit 1
  | Rdf.Turtle.Parse_error (line, msg) ->
      Format.eprintf "Turtle parse error, line %d: %s@." line msg;
      exit 1
  | Query.Sparql.Parse_error (line, msg) ->
      Format.eprintf "query parse error, line %d: %s@." line msg;
      exit 1
  | Hexa.Snapshot.Corrupt msg ->
      Format.eprintf "corrupt snapshot: %s@." msg;
      exit 1
  | Sys_error msg | Failure msg ->
      Format.eprintf "error: %s@." msg;
      exit 1

(* Query arguments accept inline text or [@FILE]. *)
let read_query_arg query_text =
  if String.length query_text > 0 && query_text.[0] = '@' then (
    let path = String.sub query_text 1 (String.length query_text - 1) in
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic)))
  else query_text

let format_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "format" ] ~docv:"FMT" ~doc:"Input format: ntriples or turtle (default: by extension).")

let data_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA" ~doc:"RDF data file.")

(* --- query ------------------------------------------------------------ *)

let query_cmd =
  let query_arg =
    Arg.(
      required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"SPARQL query text, or @FILE.")
  in
  let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  let run data format query_text csv =
    handle_errors (fun () ->
        let store = load_store ~format data in
        let text = read_query_arg query_text in
        let q = Query.Sparql.parse ~namespaces:(Rdf.Namespace.default ()) text in
        let boxed = Hexa.Store_sig.box_hexastore store in
        (* Every execution goes through the profiler so a run crossing
           the HEXASTORE_SLOW_MS threshold lands in the slow-query log
           (and the flight recorder) with its --analyze tree. *)
        let profiled f =
          let x, delta = Telemetry.Profile.profiled f in
          Telemetry.Profile.note
            ~label:(Query.Exec.query_label q.algebra)
            ~plan:(fun () ->
              Format.asprintf "%a" Query.Exec.pp_explain
                (Query.Exec.explain ~analyze:true boxed q.algebra))
            delta;
          x
        in
        if q.is_ask then
          print_endline (if profiled (fun () -> Query.Exec.ask boxed q.algebra) then "yes" else "no")
        else
          match q.template with
          | Some template ->
              let triples = profiled (fun () -> Query.Exec.construct boxed ~template q.algebra) in
              List.iter (fun t -> print_endline (Rdf.Triple.to_string t)) triples
          | None -> begin
          let solutions = profiled (fun () -> Query.Exec.run boxed q.algebra) in
          let dict = Hexa.Hexastore.dict store in
          if csv then print_string (Query.Results.to_csv dict ~columns:q.projection solutions)
          else
            Format.printf "@[<v>%a@]@."
              (Query.Results.pp dict ~columns:q.projection)
              solutions
        end;
        (* HEXASTORE_TELEMETRY=1: dump what the run recorded, on stderr
           so it composes with --csv pipelines. *)
        if !Telemetry.enabled then Format.eprintf "%a@." Telemetry.report ())
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Load RDF data and run a SPARQL-subset query against a Hexastore.")
    Term.(const run $ data_arg $ format_arg $ query_arg $ csv_arg)

(* --- explain ---------------------------------------------------------- *)

let explain_cmd =
  let query_arg =
    Arg.(
      required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"SPARQL query text, or @FILE.")
  in
  let analyze_arg =
    Arg.(
      value & flag
      & info [ "analyze" ] ~doc:"Also execute the plan and report actual cardinalities and timings.")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the plan tree as JSON.") in
  let run data format query_text analyze json =
    handle_errors (fun () ->
        let store = load_store ~format data in
        let text = read_query_arg query_text in
        let q = Query.Sparql.parse ~namespaces:(Rdf.Namespace.default ()) text in
        let boxed = Hexa.Store_sig.box_hexastore store in
        let plan = Query.Exec.explain ~analyze boxed q.algebra in
        if json then print_endline (Telemetry.Json.to_string ~indent:2 (Query.Exec.explain_to_json plan))
        else Format.printf "%a@." Query.Exec.pp_explain plan)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the query plan: join order, per-scan index, cardinality estimates; with --analyze, \
          actual row counts and timings.")
    Term.(const run $ data_arg $ format_arg $ query_arg $ analyze_arg $ json_arg)

(* --- profile ---------------------------------------------------------- *)

let profile_cmd =
  let query_arg =
    Arg.(
      required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"SPARQL query text, or @FILE.")
  in
  let slow_arg =
    Arg.(
      value & opt float 0.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Slow-query threshold in milliseconds (default 0: the profiled query always lands \
                in the slow-query log and the flight recorder).")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the whole profile as JSON.") in
  let run data format query_text slow_ms json =
    handle_errors (fun () ->
        (* Full instrumentation regardless of the environment: counters,
           spans and per-node probe/GC attribution all need the gate. *)
        Telemetry.enabled := true;
        Telemetry.Profile.set_threshold_s (slow_ms /. 1e3);
        let store = load_store ~format data in
        let text = read_query_arg query_text in
        let q = Query.Sparql.parse ~namespaces:(Rdf.Namespace.default ()) text in
        let boxed = Hexa.Store_sig.box_hexastore store in
        let label = Query.Exec.query_label q.algebra in
        let rows, delta =
          Telemetry.Profile.profiled (fun () ->
              if q.is_ask then if Query.Exec.ask boxed q.algebra then 1 else 0
              else
                match q.template with
                | Some template -> List.length (Query.Exec.construct boxed ~template q.algebra)
                | None -> List.length (Query.Exec.run boxed q.algebra))
        in
        let plan = Query.Exec.explain ~analyze:true boxed q.algebra in
        Telemetry.Profile.note ~label
          ~plan:(fun () -> Format.asprintf "%a" Query.Exec.pp_explain plan)
          delta;
        if json then
          print_endline
            (Telemetry.Json.to_string
               (Telemetry.Json.Obj
                  [
                    ("label", Telemetry.Json.String label);
                    ("rows", Telemetry.Json.Int rows);
                    ("profile", Telemetry.Profile.delta_to_json delta);
                    ("plan", Query.Exec.explain_to_json plan);
                    ("slow_queries", Telemetry.Profile.slow_log_to_json ());
                    ("events", Telemetry.Events.to_json ());
                  ]))
        else begin
          let probes =
            Telemetry.Profile.counter_total ~prefix:"hexastore.probe." delta
          in
          Format.printf "query: %s@." label;
          Format.printf "rows=%d wall=%.3fms probes=%d alloc=%.0f words@." rows
            (delta.Telemetry.Profile.wall_s *. 1e3)
            probes delta.Telemetry.Profile.alloc_words;
          Format.printf "@.plan (--analyze, per-node rows/time/probes/gc):@.%a@."
            Query.Exec.pp_explain plan;
          Format.printf "@.counter deltas:@.";
          List.iter
            (fun (n, v) -> Format.printf "  %-48s %+d@." n v)
            delta.Telemetry.Profile.counters;
          Format.printf "@.flight recorder:@.%a@." Telemetry.Events.pp ()
        end)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a query under the profiler: wall time, index probes, produced rows and GC words \
          attributed to each plan operator, plus registry counter deltas and the flight-recorder \
          dump.")
    Term.(const run $ data_arg $ format_arg $ query_arg $ slow_arg $ json_arg)

(* --- metrics ----------------------------------------------------------- *)

let metrics_cmd =
  let query_arg =
    Arg.(
      value & opt_all string []
      & info [ "query" ] ~docv:"QUERY"
          ~doc:"Query (or @FILE) to execute before exporting, so its activity shows up in the \
                metrics; repeatable.")
  in
  let output_arg =
    Arg.(
      value & opt string "prometheus"
      & info [ "output" ] ~docv:"FMT" ~doc:"Export format: prometheus (text exposition) or json.")
  in
  let chrome_arg =
    Arg.(
      value & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:"Also write the recorded spans as Chrome trace-event JSON to FILE (load in \
                chrome://tracing or Perfetto).")
  in
  let run data format queries output chrome =
    handle_errors (fun () ->
        Telemetry.enabled := true;
        let store = load_store ~format data in
        let boxed = Hexa.Store_sig.box_hexastore store in
        List.iter
          (fun query_text ->
            let q =
              Query.Sparql.parse ~namespaces:(Rdf.Namespace.default ()) (read_query_arg query_text)
            in
            if q.is_ask then ignore (Query.Exec.ask boxed q.algebra)
            else ignore (Query.Exec.run boxed q.algebra))
          queries;
        (match output with
        | "prometheus" -> print_string (Telemetry.Export.prometheus ())
        | "json" -> print_endline (Telemetry.Json.to_string (Telemetry.to_json ()))
        | f -> failwith (Printf.sprintf "unknown --output %S (expected prometheus or json)" f));
        match chrome with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc (Telemetry.Json.to_string (Telemetry.Export.chrome_trace ())));
            Format.eprintf "wrote %d spans to %s@."
              (List.length (Telemetry.Trace.spans ()))
              file)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Load data, optionally run queries, and export the telemetry registry as Prometheus \
          text exposition (with histogram quantiles) or JSON.")
    Term.(const run $ data_arg $ format_arg $ query_arg $ output_arg $ chrome_arg)

(* --- top --------------------------------------------------------------- *)

let top_cmd =
  let query_arg =
    Arg.(
      value & opt_all string []
      & info [ "query" ] ~docv:"QUERY"
          ~doc:"Query (or @FILE) the driver domain loops while the monitor watches; repeatable. \
                With no queries the monitor watches an idle registry.")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Sampling interval (default 1s).")
  in
  let ticks_arg =
    Arg.(
      value & opt int 5
      & info [ "ticks" ] ~docv:"N" ~doc:"Number of samples to take before exiting (default 5).")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Force the pool fan-out width (default: HEXASTORE_DOMAINS or the host's \
                recommended domain count).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON view per tick instead of tables.")
  in
  let run data format queries interval ticks domains json =
    handle_errors (fun () ->
        Telemetry.enabled := true;
        Option.iter Query.Par.set_domains domains;
        (* Parallel plans on watchable stores: without this, loads small
           enough to demo with never cross the fan-out floor and top
           shows an idle pool. *)
        Query.Planner.parallel_min_rows := 0;
        let store = load_store ~format data in
        let boxed = Hexa.Store_sig.box_hexastore store in
        let qs =
          List.map
            (fun query_text ->
              Query.Sparql.parse ~namespaces:(Rdf.Namespace.default ()) (read_query_arg query_text))
            queries
        in
        (* The driver loops the query list on its own domain so the main
           domain can sample on a steady cadence; queries that fan out
           pull the pool's workers in on top of that. *)
        let stop = Atomic.make false in
        let driver =
          match qs with
          | [] -> None
          | qs ->
              Some
                (Domain.spawn (fun () ->
                     while not (Atomic.get stop) do
                       List.iter
                         (fun (q : Query.Sparql.query) ->
                           if q.is_ask then ignore (Query.Exec.ask boxed q.algebra)
                           else ignore (Query.Exec.run boxed q.algebra))
                         qs
                     done))
        in
        Fun.protect
          ~finally:(fun () ->
            Atomic.set stop true;
            Option.iter Domain.join driver)
          (fun () ->
            let step = Telemetry.Monitor.watch () in
            for tick = 1 to max 1 ticks do
              Unix.sleepf (max 0.01 interval);
              let view = step () in
              if json then
                print_endline (Telemetry.Json.to_string (Telemetry.Monitor.view_to_json view))
              else
                Format.printf "== hexastore top — tick %d/%d ==@.%a@.@." tick (max 1 ticks)
                  Telemetry.Monitor.pp_view view
            done))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Watch the live telemetry registry: load data, loop queries on a driver domain, and \
          print rate-computed views (counters/sec, pool queue depth and utilization, task \
          latency quantiles) every interval.")
    Term.(const run $ data_arg $ format_arg $ query_arg $ interval_arg $ ticks_arg $ domains_arg $ json_arg)

(* --- stats ------------------------------------------------------------ *)

let stats_cmd =
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Show the N most frequent properties.")
  in
  let run data format top =
    handle_errors (fun () ->
        let store = load_store ~format data in
        Format.printf "%a@." Hexa.Stats.pp_summary (Hexa.Stats.summary store);
        Format.printf "entries per resource occurrence: %.2f (worst case 5.0)@."
          (Hexa.Stats.entries_per_triple store);
        let dict = Hexa.Hexastore.dict store in
        Format.printf "@.top properties:@.";
        List.iteri
          (fun i (p, n) ->
            if i < top then
              Format.printf "  %6d  %s@." n
                (Rdf.Term.to_string (Dict.Term_dict.decode_term dict p)))
          (Hexa.Stats.property_histogram store))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Load RDF data and print Hexastore statistics.")
    Term.(const run $ data_arg $ format_arg $ top_arg)

(* --- convert ------------------------------------------------------------ *)

let convert_cmd =
  let out_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output file (.nt or .ttl).")
  in
  let run data format out =
    handle_errors (fun () ->
        let triples = load_data ~format data in
        if Filename.check_suffix out ".ttl" then (
          let oc = open_out out in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc (Rdf.Turtle.to_string ~namespaces:(Rdf.Namespace.default ()) triples)))
        else Rdf.Ntriples.save_file out triples;
        Format.printf "wrote %d triples to %s@." (List.length triples) out)
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Translate RDF data between N-Triples and Turtle.")
    Term.(const run $ data_arg $ format_arg $ out_arg)

(* --- snapshot ----------------------------------------------------------- *)

let snapshot_cmd =
  let out_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Snapshot file (.snap).")
  in
  let run data format out =
    handle_errors (fun () ->
        let store = load_store ~format data in
        Hexa.Snapshot.save store out;
        Format.printf "wrote snapshot of %d triples to %s@." (Hexa.Hexastore.size store) out)
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc:"Compile RDF data into a binary Hexastore snapshot.")
    Term.(const run $ data_arg $ format_arg $ out_arg)

(* --- advise ------------------------------------------------------------- *)

let shape_of_string = function
  | "spo" | "all" -> Some Hexa.Pattern.All
  | "sp" -> Some Hexa.Pattern.Sp
  | "so" -> Some Hexa.Pattern.So
  | "po" -> Some Hexa.Pattern.Po
  | "s" -> Some Hexa.Pattern.S
  | "p" -> Some Hexa.Pattern.P
  | "o" -> Some Hexa.Pattern.O
  | "none" | "scan" -> Some Hexa.Pattern.None_bound
  | _ -> None

let advise_cmd =
  let shapes_arg =
    Arg.(
      non_empty & opt_all string []
      & info [ "shape" ] ~docv:"SHAPE=N"
          ~doc:
            "A workload entry: pattern shape (s, p, o, sp, so, po, spo, none — the bound \
             positions) and its frequency, e.g. --shape o=400 --shape sp=25.")
  in
  let run data format shapes =
    handle_errors (fun () ->
        let workload =
          List.map
            (fun entry ->
              match String.split_on_char '=' (String.lowercase_ascii entry) with
              | [ shape; n ] -> (
                  match (shape_of_string shape, int_of_string_opt n) with
                  | Some shape, Some n when n > 0 -> (shape, n)
                  | _ -> failwith (Printf.sprintf "bad --shape %S" entry))
              | _ -> failwith (Printf.sprintf "bad --shape %S (expected SHAPE=N)" entry))
            shapes
        in
        let store = load_store ~format data in
        let r = Hexa.Advisor.recommend workload in
        Format.printf "%a@." Hexa.Advisor.pp_recommendation r;
        let full = Hexa.Hexastore.memory_words store in
        let est = Hexa.Advisor.estimate_memory_words store r.keep in
        Format.printf
          "memory: full sextuple %.2f MB, recommended subset ~ %.2f MB (%.0f%% saved)@."
          (float_of_int (full * 8) /. 1048576.)
          (float_of_int (est * 8) /. 1048576.)
          (100. *. Hexa.Advisor.savings_fraction store r.keep))
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Recommend which of the six indices a pattern workload needs (the section-6 advisor).")
    Term.(const run $ data_arg $ format_arg $ shapes_arg)

let () =
  let info =
    Cmd.info "hexastore" ~version:"1.0.0"
      ~doc:"Sextuple-indexed RDF storage and querying (Weiss, Karras, Bernstein; VLDB 2008)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            query_cmd;
            explain_cmd;
            profile_cmd;
            metrics_cmd;
            top_cmd;
            stats_cmd;
            convert_cmd;
            snapshot_cmd;
            advise_cmd;
          ]))
